package endpoint

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"lusail/internal/rdf"
	"lusail/internal/sparql"
	"lusail/internal/store"
)

func churnGraph(n int) rdf.Graph {
	g := make(rdf.Graph, 0, n)
	for i := 0; i < n; i++ {
		g = append(g, rdf.T(
			rdf.IRI("http://ex/churn"+string(rune('a'+i))),
			rdf.IRI("http://ex/p"),
			rdf.Literal("v")))
	}
	return g
}

func TestLocalDataVersion(t *testing.T) {
	l := NewLocal("ep", testStore())
	v, err := l.DataVersion(context.Background())
	if err != nil {
		t.Fatalf("DataVersion: %v", err)
	}
	if v != 1 {
		t.Fatalf("initial data version = %d, want 1", v)
	}

	before := l.Store().Len()
	ins := churnGraph(2)
	l.ApplyChurn(ins, nil)
	if v, _ = l.DataVersion(context.Background()); v != 2 {
		t.Fatalf("version after insert churn = %d, want 2", v)
	}
	if got := l.Store().Len(); got != before+2 {
		t.Fatalf("store length after insert churn = %d, want %d", got, before+2)
	}

	// A churn batch is one version bump, however many triples move.
	l.ApplyChurn(nil, ins)
	if v, _ = l.DataVersion(context.Background()); v != 3 {
		t.Fatalf("version after delete churn = %d, want 3", v)
	}
	if got := l.Store().Len(); got != before {
		t.Fatalf("store length after delete churn = %d, want %d", got, before)
	}

	// Empty churn must not bump: probes would see phantom changes.
	l.ApplyChurn(nil, nil)
	if v, _ = l.DataVersion(context.Background()); v != 3 {
		t.Fatalf("version after empty churn = %d, want 3 (no bump)", v)
	}

	if _, err := l.DataVersion(canceledCtx()); err == nil {
		t.Fatal("DataVersion with cancelled context should fail")
	}
}

// opaqueEndpoint exposes neither a data version nor a decorator chain.
type opaqueEndpoint struct{}

func (opaqueEndpoint) Name() string { return "opaque" }
func (opaqueEndpoint) Query(ctx context.Context, q string) (*sparql.Results, error) {
	return &sparql.Results{}, nil
}

func canceledCtx() context.Context {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	return ctx
}

// DataVersionOf must see through the whole decorator chain — the
// resilient and instrumented wrappers (Inner) and the fault injector —
// and must report an unversioned endpoint as not-versioned, never as a
// probe error.
func TestDataVersionOfUnwrapsDecorators(t *testing.T) {
	l := NewLocal("ep", testStore())
	chain := NewFaulty(
		NewResilient(NewInstrumented(l), ResilienceConfig{MaxRetries: 1}),
		FaultConfig{ErrorRate: 1}) // faults must not affect probes

	v, ok, err := DataVersionOf(context.Background(), chain)
	if err != nil || !ok || v != 1 {
		t.Fatalf("DataVersionOf(chain) = (%d, %v, %v), want (1, true, nil)", v, ok, err)
	}
	l.BumpDataVersion()
	if v, _, _ = DataVersionOf(context.Background(), chain); v != 2 {
		t.Fatalf("DataVersionOf after bump = %d, want 2", v)
	}

	// An endpoint with no DataVersioner anywhere in its chain is
	// unverifiable: ok=false and no error.
	plain := opaqueEndpoint{}
	if _, ok, err := DataVersionOf(context.Background(), NewFaulty(plain, FaultConfig{})); ok || err != nil {
		t.Fatalf("DataVersionOf(unversioned) = (_, %v, %v), want (false, nil)", ok, err)
	}
}

func TestFaultyTickChurn(t *testing.T) {
	st := store.New()
	st.AddGraph(churnGraph(4))
	l := NewLocal("ep", st)
	g := churnGraph(4)
	f := NewFaulty(l, FaultConfig{Mutations: []Mutation{
		{AtTick: 2, Delete: g[:1]},
		{AtTick: 2, Delete: g[1:2]},                // same tick: both fire, in order
		{AtTick: 5, Delete: g[2:3], Insert: g[:1]}, // swap
	}})

	f.Tick(1)
	if f.Churned() != 0 {
		t.Fatalf("churned after tick 1 = %d, want 0", f.Churned())
	}
	f.Tick(2)
	if f.Churned() != 2 {
		t.Fatalf("churned after tick 2 = %d, want 2", f.Churned())
	}
	if v, _, _ := DataVersionOf(context.Background(), f); v != 3 {
		t.Fatalf("data version after two batches = %d, want 3", v)
	}
	// Ticks are monotonic: going backwards neither unapplies nor
	// reapplies.
	f.Tick(1)
	if f.Churned() != 2 {
		t.Fatalf("churned after backwards tick = %d, want 2", f.Churned())
	}
	f.Tick(5)
	if f.Churned() != 3 || l.Store().Len() != 2 {
		t.Fatalf("after swap: churned=%d len=%d, want 3 and 2", f.Churned(), l.Store().Len())
	}
}

func TestFaultyRequestCountChurn(t *testing.T) {
	st := store.New()
	st.AddGraph(churnGraph(3))
	l := NewLocal("ep", st)
	f := NewFaulty(l, FaultConfig{Mutations: []Mutation{
		{AtRequest: 2, Delete: churnGraph(3)[:1]},
	}})
	ctx := context.Background()
	if _, err := f.Query(ctx, "SELECT ?s WHERE { ?s ?p ?o }"); err != nil {
		t.Fatal(err)
	}
	if f.Churned() != 0 {
		t.Fatal("mutation fired before its request trigger")
	}
	// The 2nd request must already see the mutated data.
	res, err := f.Query(ctx, "SELECT ?s ?p ?o WHERE { ?s ?p ?o }")
	if err != nil {
		t.Fatal(err)
	}
	if f.Churned() != 1 {
		t.Fatalf("churned after trigger request = %d, want 1", f.Churned())
	}
	if res.Len() != 2 {
		t.Fatalf("trigger request saw %d rows, want 2 (post-churn data)", res.Len())
	}
}

// The satellite audit: hammer one Faulty wrapper from many goroutines
// with every probabilistic mode on, plus concurrent ticking and
// probing, and assert the counters stayed consistent: every request is
// either injected or completed, never both, never neither.
func TestFaultyCounterConsistencyUnderLoad(t *testing.T) {
	st := store.New()
	st.AddGraph(churnGraph(8))
	l := NewLocal("ep", st)
	f := NewFaulty(l, FaultConfig{
		Seed:            11,
		ErrorRate:       0.3,
		HangRate:        0.05,
		FailFirst:       25,
		FlapDownFor:     3,
		FlapUpFor:       9,
		MaxRequestBytes: 1 << 12,
		Mutations: []Mutation{
			{AtRequest: 40, Delete: churnGraph(1)},
			{AtTick: 3, Insert: churnGraph(1)},
		},
	})

	const workers, perWorker = 8, 150
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				// Short deadline: injected hangs block until expiry.
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
				f.Query(ctx, "SELECT ?s WHERE { ?s ?p ?o }")
				cancel()
			}
		}()
	}
	done := make(chan struct{})
	go func() { // concurrent ticking and probing race the queries
		defer close(done)
		for tick := int64(1); tick <= 10; tick++ {
			f.Tick(tick)
			DataVersionOf(context.Background(), f)
			f.Requests()
			f.Churned()
		}
	}()
	wg.Wait()
	<-done

	total, injected, completed := f.Requests(), f.Injected(), f.Completed()
	if total != int64(workers*perWorker) {
		t.Fatalf("requests = %d, want %d", total, workers*perWorker)
	}
	if injected+completed != total {
		t.Fatalf("injected (%d) + completed (%d) != requests (%d)", injected, completed, total)
	}
	if f.Churned() != 2 {
		t.Fatalf("churned = %d, want both mutations applied", f.Churned())
	}
	if v, ok, err := DataVersionOf(context.Background(), f); err != nil || !ok || v != 3 {
		t.Fatalf("final data version = (%d, %v, %v), want (3, true, nil)", v, ok, err)
	}
}

func TestHandlerHeadDataVersionProbe(t *testing.T) {
	l := NewLocal("server", testStore())
	srv := httptest.NewServer(Handler(l))
	defer srv.Close()
	ep := NewHTTP("server", srv.URL)

	v, err := ep.DataVersion(context.Background())
	if err != nil {
		t.Fatalf("HEAD probe: %v", err)
	}
	if v != 1 {
		t.Fatalf("probed version = %d, want 1", v)
	}
	if got, ok := ep.LastSeenDataVersion(); !ok || got != 1 {
		t.Fatalf("LastSeenDataVersion = (%d, %v) after probe, want (1, true)", got, ok)
	}

	l.BumpDataVersion()
	if v, _ = ep.DataVersion(context.Background()); v != 2 {
		t.Fatalf("probed version after bump = %d, want 2", v)
	}

	// The version also rides every query response.
	l.BumpDataVersion()
	if _, err := ep.Query(context.Background(), "SELECT ?s WHERE { ?s ?p ?o }"); err != nil {
		t.Fatal(err)
	}
	if got, _ := ep.LastSeenDataVersion(); got != 3 {
		t.Fatalf("LastSeenDataVersion after query = %d, want 3", got)
	}

	// DataVersionOf resolves the HTTP client directly (it implements
	// DataVersioner itself, no unwrapping needed).
	if v, ok, err := DataVersionOf(context.Background(), ep); err != nil || !ok || v != 3 {
		t.Fatalf("DataVersionOf(http) = (%d, %v, %v), want (3, true, nil)", v, ok, err)
	}
}

// A non-lusail server answers HEAD without the version header; the
// probe must classify that as "no data version", which DataVersionOf
// maps to unverifiable rather than a probe failure.
func TestHTTPDataVersionAbsent(t *testing.T) {
	plain := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusNoContent)
	}))
	defer plain.Close()
	ep := NewHTTP("plain", plain.URL)
	if _, err := ep.DataVersion(context.Background()); !errors.Is(err, ErrNoDataVersion) {
		t.Fatalf("DataVersion against a version-less server = %v, want ErrNoDataVersion", err)
	}
	if _, ok, err := DataVersionOf(context.Background(), ep); ok || err != nil {
		t.Fatalf("DataVersionOf(version-less) = (_, %v, %v), want (false, nil)", ok, err)
	}

	// An unreachable endpoint, by contrast, IS a probe failure: the
	// fence keeps the last tracked version and counts the error.
	down := NewHTTP("down", plain.URL)
	plain.Close()
	if _, ok, err := DataVersionOf(context.Background(), down); ok || err == nil {
		t.Fatalf("DataVersionOf(unreachable) = (_, %v, %v), want (false, error)", ok, err)
	}
}
