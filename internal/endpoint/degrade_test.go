package endpoint

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"

	"lusail/internal/sparql"
)

func TestParseDegradePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want DegradePolicy
		err  bool
	}{
		{"fail", DegradeFail, false},
		{"", DegradeFail, false},
		{"skip-endpoint", DegradeSkipEndpoint, false},
		{"skip", DegradeSkipEndpoint, false},
		{"best-effort", DegradeBestEffort, false},
		{"besteffort", DegradeBestEffort, false},
		{"bogus", DegradeFail, true},
	}
	for _, c := range cases {
		got, err := ParseDegradePolicy(c.in)
		if (err != nil) != c.err || got != c.want {
			t.Errorf("ParseDegradePolicy(%q) = %v, %v", c.in, got, err)
		}
	}
	for _, p := range []DegradePolicy{DegradeFail, DegradeSkipEndpoint, DegradeBestEffort} {
		back, err := ParseDegradePolicy(p.String())
		if err != nil || back != p {
			t.Errorf("round trip %v → %q → %v, %v", p, p.String(), back, err)
		}
	}
}

func TestDegradeAbsorbSemantics(t *testing.T) {
	transient := Transient(errors.New("boom"))
	attemptTimeout := Transient(fmt.Errorf("attempt timed out: %w", context.DeadlineExceeded))
	httpErr := &HTTPError{Endpoint: "ep", Status: 503}
	breaker := fmt.Errorf("endpoint ep: %w", ErrCircuitOpen)

	expired := NewDegrade(DegradeBestEffort, time.Now().Add(-time.Second))
	cases := []struct {
		name string
		d    *Degrade
		err  error
		want bool
	}{
		{"nil degrade", nil, transient, false},
		{"fail policy", NewDegrade(DegradeFail, time.Time{}), transient, false},
		{"skip transient", NewDegrade(DegradeSkipEndpoint, time.Time{}), transient, true},
		{"skip http", NewDegrade(DegradeSkipEndpoint, time.Time{}), httpErr, true},
		{"skip breaker", NewDegrade(DegradeSkipEndpoint, time.Time{}), breaker, true},
		{"nil error", NewDegrade(DegradeBestEffort, time.Time{}), nil, false},
		// The caller's own cancellation is never absorbed.
		{"canceled", NewDegrade(DegradeBestEffort, time.Time{}), context.Canceled, false},
		// A bare deadline (caller-imposed) is not an endpoint fault...
		{"skip bare deadline", NewDegrade(DegradeSkipEndpoint, time.Time{}), context.DeadlineExceeded, false},
		{"best-effort bare deadline, no budget", NewDegrade(DegradeBestEffort, time.Time{}), context.DeadlineExceeded, false},
		// ...unless it is the query budget firing under best-effort.
		{"best-effort expired budget", expired, context.DeadlineExceeded, true},
		// The resilient decorator's per-attempt timeout wraps
		// DeadlineExceeded in a TransientError: an ordinary endpoint
		// fault, absorbable under skip.
		{"skip attempt timeout", NewDegrade(DegradeSkipEndpoint, time.Time{}), attemptTimeout, true},
	}
	for _, c := range cases {
		if got := c.d.Absorb(c.err); got != c.want {
			t.Errorf("%s: Absorb = %v, want %v", c.name, got, c.want)
		}
	}
}

func TestDegradeDropDedupAndMerge(t *testing.T) {
	d := NewDegrade(DegradeBestEffort, time.Time{})
	err := Transient(errors.New("connection refused"))
	d.Drop("ep1", "sq0", "phase2", err)
	d.Drop("ep1", "sq0", "phase2", err) // duplicate triple collapses
	d.Drop("ep1", "sq1", "phase2", err)
	if got := d.DropCount(); got != 2 {
		t.Fatalf("DropCount = %d, want 2 (dedup failed)", got)
	}
	// Merge preserves the same dedup key space.
	d.Merge([]sparql.Dropped{
		d.DropRecord("ep1", "sq0", "phase2", err), // already seen
		d.DropRecord("ep2", "", "source-selection", fmt.Errorf("endpoint ep2: %w", ErrCircuitOpen)),
	})
	if got := d.DropCount(); got != 3 {
		t.Fatalf("DropCount after merge = %d, want 3", got)
	}
	c := d.Completeness()
	if c == nil || c.Complete {
		t.Fatalf("Completeness = %+v, want partial", c)
	}
	if s := c.String(); !strings.Contains(s, "ep2@source-selection: circuit breaker open") {
		t.Errorf("completeness string missing breaker drop: %q", s)
	}
	eps := c.DroppedEndpoints()
	if len(eps) != 2 || eps[0] != "ep1" || eps[1] != "ep2" {
		t.Errorf("DroppedEndpoints = %v, want [ep1 ep2]", eps)
	}
}

func TestDegradeReasonClassification(t *testing.T) {
	noBudget := NewDegrade(DegradeBestEffort, time.Time{})
	expired := NewDegrade(DegradeBestEffort, time.Now().Add(-time.Second))
	cases := []struct {
		d    *Degrade
		err  error
		want string
	}{
		{noBudget, fmt.Errorf("x: %w", ErrCircuitOpen), "circuit breaker open"},
		{expired, context.DeadlineExceeded, "query budget exceeded"},
		{noBudget, context.DeadlineExceeded, "deadline exceeded"},
		{noBudget, &HTTPError{Endpoint: "e", Status: 414}, "HTTP 414"},
		{noBudget, errors.New("weird"), "weird"},
		{noBudget, errors.New(strings.Repeat("x", 200)), strings.Repeat("x", 160) + "…"},
	}
	for _, c := range cases {
		if got := c.d.reason(c.err); got != c.want {
			t.Errorf("reason(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

func TestDegradeNilSafety(t *testing.T) {
	var d *Degrade
	if d.Active() || d.BudgetExpired() || d.Absorb(errors.New("x")) {
		t.Error("nil Degrade must behave as inert DegradeFail")
	}
	d.Drop("ep", "", "phase1", nil) // must not panic
	d.Merge([]sparql.Dropped{{Endpoint: "ep"}})
	if d.DropCount() != 0 || d.Drops() != nil || d.Completeness() != nil {
		t.Error("nil Degrade must report nothing")
	}
	if DegradeFrom(context.Background()) != nil {
		t.Error("DegradeFrom on a bare context must be nil")
	}
	real := NewDegrade(DegradeSkipEndpoint, time.Time{})
	if got := DegradeFrom(WithDegrade(context.Background(), real)); got != real {
		t.Error("WithDegrade/DegradeFrom round trip failed")
	}
}

func TestFaultyDownMode(t *testing.T) {
	f := NewFaulty(NewLocal("ep", testStore()), FaultConfig{Down: true})
	for i := 0; i < 3; i++ {
		_, err := f.Query(context.Background(), `ASK { ?s ?p ?o }`)
		if err == nil {
			t.Fatal("down endpoint answered")
		}
		if !Retryable(err) {
			t.Errorf("down error must be transient (retryable): %v", err)
		}
	}
	if f.Completed() != 0 {
		t.Error("down endpoint delegated a request")
	}
}

func TestFaultyFlapMode(t *testing.T) {
	f := NewFaulty(NewLocal("ep", testStore()), FaultConfig{FlapDownFor: 2, FlapUpFor: 3})
	var pattern []bool
	for i := 0; i < 10; i++ {
		_, err := f.Query(context.Background(), `ASK { ?s ?p ?o }`)
		pattern = append(pattern, err == nil)
	}
	want := []bool{false, false, true, true, true, false, false, true, true, true}
	for i := range want {
		if pattern[i] != want[i] {
			t.Fatalf("flap pattern = %v, want %v", pattern, want)
		}
	}
}

func TestFaultyOversizeMode(t *testing.T) {
	f := NewFaulty(NewLocal("ep", testStore()), FaultConfig{MaxRequestBytes: 64})
	if _, err := f.Query(context.Background(), `ASK { ?s ?p ?o }`); err != nil {
		t.Fatalf("small request rejected: %v", err)
	}
	big := "ASK { ?s ?p ?o } #" + strings.Repeat("x", 100)
	_, err := f.Query(context.Background(), big)
	var he *HTTPError
	if !errors.As(err, &he) || he.Status != 413 {
		t.Fatalf("oversized request error = %v, want HTTP 413", err)
	}
	if Retryable(err) {
		t.Error("413 must not be retryable: only re-chunking can succeed")
	}

	// Custom status models GET URL-length caps.
	f414 := NewFaulty(NewLocal("ep", testStore()), FaultConfig{MaxRequestBytes: 64, OversizeStatus: 414})
	_, err = f414.Query(context.Background(), big)
	if !errors.As(err, &he) || he.Status != 414 {
		t.Fatalf("custom oversize status error = %v, want HTTP 414", err)
	}
}
