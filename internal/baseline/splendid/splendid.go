// Package splendid reimplements the SPLENDID federated SPARQL engine
// (Görlitz & Staab, COLD 2011): an index-based system that
// pre-collects VoID-style statistics from every endpoint, selects
// sources from the index, orders joins with those statistics, and
// chooses per step between shipping a whole pattern (hash join) and a
// bound join. Its defining cost in the Lusail paper is the
// preprocessing phase, which grows with dataset size (§VI-A).
package splendid

import (
	"context"
	"fmt"
	"sort"
	"time"

	"lusail/internal/endpoint"
	"lusail/internal/engine"
	"lusail/internal/federation"
	"lusail/internal/rdf"
	"lusail/internal/sparql"
	"lusail/internal/store"
)

// PredicateInfo is one VoID entry: per-endpoint statistics for one
// predicate.
type PredicateInfo struct {
	Triples          int
	DistinctSubjects int
	DistinctObjects  int
}

// Index is the precomputed VoID catalog: endpoint -> predicate IRI ->
// statistics.
type Index struct {
	ByEndpoint []map[string]PredicateInfo
	BuildTime  time.Duration
	// TriplesScanned totals the data volume the preprocessing phase
	// had to touch, the driver of its cost.
	TriplesScanned int
}

// BuildIndex harvests VoID statistics from every endpoint. For local
// endpoints it scans the store the way a VoID extractor would; the
// time is dominated by dataset size, reproducing the paper's
// preprocessing-cost observation.
func BuildIndex(eps []endpoint.Endpoint) (*Index, error) {
	start := time.Now()
	idx := &Index{ByEndpoint: make([]map[string]PredicateInfo, len(eps))}
	for i, ep := range eps {
		m := map[string]PredicateInfo{}
		local, ok := ep.(interface{ Store() *store.Store })
		if !ok {
			return nil, fmt.Errorf("splendid: endpoint %s does not expose statistics", ep.Name())
		}
		st := local.Store()
		for _, ps := range st.AllPredicateStats() {
			m[ps.Predicate.Value] = PredicateInfo{
				Triples:          ps.Triples,
				DistinctSubjects: ps.DistinctSubjects,
				DistinctObjects:  ps.DistinctObjects,
			}
			idx.TriplesScanned += ps.Triples
		}
		idx.ByEndpoint[i] = m
	}
	idx.BuildTime = time.Since(start)
	return idx, nil
}

// Config tunes SPLENDID.
type Config struct {
	// BindBlockSize is the bound-join block size.
	BindBlockSize int
}

// Splendid is the engine.
type Splendid struct {
	eps     []endpoint.Endpoint
	idx     *Index
	cfg     Config
	handler *federation.Handler
	asker   *federation.Selector
}

// New builds SPLENDID over a prebuilt index.
func New(eps []endpoint.Endpoint, idx *Index, cfg Config) *Splendid {
	if cfg.BindBlockSize == 0 {
		cfg.BindBlockSize = 50
	}
	return &Splendid{
		eps:     eps,
		idx:     idx,
		cfg:     cfg,
		handler: federation.NewHandler(len(eps)),
		asker:   federation.NewSelector(eps, federation.NewAskCache()),
	}
}

// Name implements federation.Engine.
func (s *Splendid) Name() string { return "splendid" }

// selectSources picks relevant endpoints per pattern from the VoID
// index; patterns with variable predicates fall back to ASK probes
// (as SPLENDID does for predicates missing from the catalog).
func (s *Splendid) selectSources(ctx context.Context, patterns []sparql.TriplePattern) ([][]int, error) {
	out := make([][]int, len(patterns))
	var askIdx []int
	for i, tp := range patterns {
		if tp.P.IsVar() {
			askIdx = append(askIdx, i)
			continue
		}
		for ei := range s.eps {
			if _, ok := s.idx.ByEndpoint[ei][tp.P.Term.Value]; ok {
				out[i] = append(out[i], ei)
			}
		}
	}
	if len(askIdx) > 0 {
		var probe []sparql.TriplePattern
		for _, i := range askIdx {
			probe = append(probe, patterns[i])
		}
		sel, err := s.asker.SelectPatterns(ctx, probe)
		if err != nil {
			return nil, err
		}
		for k, i := range askIdx {
			out[i] = sel.Sources[k]
		}
	}
	return out, nil
}

// estimate returns the index-based cardinality estimate of a pattern
// over its sources.
func (s *Splendid) estimate(tp sparql.TriplePattern, sources []int) float64 {
	if tp.P.IsVar() {
		total := 0.0
		for _, ei := range sources {
			for _, info := range s.idx.ByEndpoint[ei] {
				total += float64(info.Triples)
			}
		}
		return total
	}
	total := 0.0
	for _, ei := range sources {
		info := s.idx.ByEndpoint[ei][tp.P.Term.Value]
		est := float64(info.Triples)
		// Bound subject/object: scale by distinct counts, the VoID
		// selectivity model.
		if !tp.S.IsVar() && info.DistinctSubjects > 0 {
			est /= float64(info.DistinctSubjects)
		}
		if !tp.O.IsVar() && info.DistinctObjects > 0 {
			est /= float64(info.DistinctObjects)
		}
		total += est
	}
	return total
}

// Execute runs the query.
func (s *Splendid) Execute(ctx context.Context, query string) (*sparql.Results, error) {
	q, err := sparql.Parse(query)
	if err != nil {
		return nil, err
	}
	rows, err := s.evalGroup(ctx, q.Where)
	if err != nil {
		return nil, err
	}
	if q.Form == sparql.AskForm {
		return sparql.NewAskResult(len(rows) > 0), nil
	}
	return engine.Finalize(q, rows), nil
}

func (s *Splendid) evalGroup(ctx context.Context, g *sparql.GroupGraphPattern) ([]sparql.Binding, error) {
	sources, err := s.selectSources(ctx, g.Patterns)
	if err != nil {
		return nil, err
	}
	for i := range g.Patterns {
		if len(sources[i]) == 0 {
			return nil, nil
		}
	}
	// Order patterns by ascending index estimate, keeping the plan
	// connected when possible.
	order := s.orderPatterns(g.Patterns, sources)

	rows := []sparql.Binding{{}}
	boundVars := map[sparql.Var]bool{}
	first := true
	for _, pi := range order {
		tp := g.Patterns[pi]
		var err error
		rows, err = s.joinStep(ctx, rows, tp, sources[pi], first, boundVars)
		if err != nil {
			return nil, err
		}
		first = false
		if len(rows) == 0 {
			return nil, nil
		}
		for _, v := range tp.Vars() {
			boundVars[v] = true
		}
	}
	for _, vb := range g.Values {
		rows = federation.JoinBindings(rows, federation.ValuesRows(vb))
	}
	for _, u := range g.Unions {
		var alt []sparql.Binding
		for _, a := range u.Alternatives {
			r, err := s.evalGroup(ctx, a)
			if err != nil {
				return nil, err
			}
			alt = append(alt, r...)
		}
		rows = federation.JoinBindings(rows, alt)
	}
	for _, og := range g.Optionals {
		trimmed := og.Clone()
		ofilters := og.Filters
		trimmed.Filters = nil
		right, err := s.evalGroup(ctx, trimmed)
		if err != nil {
			return nil, err
		}
		rows = federation.LeftJoinBindings(rows, right, ofilters)
	}
	var out []sparql.Binding
	for _, row := range rows {
		keep := true
		for _, fl := range g.Filters {
			ok, err := sparql.EvalBool(fl, row, nil)
			if err != nil || !ok {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, row)
		}
	}
	return out, nil
}

func (s *Splendid) orderPatterns(patterns []sparql.TriplePattern, sources [][]int) []int {
	type scored struct {
		idx int
		est float64
	}
	var items []scored
	for i, tp := range patterns {
		items = append(items, scored{i, s.estimate(tp, sources[i])})
	}
	sort.SliceStable(items, func(a, b int) bool { return items[a].est < items[b].est })
	// Greedy connectivity pass: start with the cheapest, then always
	// prefer a connected pattern.
	var order []int
	used := make([]bool, len(items))
	vars := map[sparql.Var]bool{}
	for len(order) < len(items) {
		pick := -1
		for k, it := range items {
			if used[k] {
				continue
			}
			connected := len(order) == 0
			for _, v := range patterns[it.idx].Vars() {
				if vars[v] {
					connected = true
				}
			}
			if connected {
				pick = k
				break
			}
			if pick < 0 {
				pick = k
			}
		}
		used[pick] = true
		order = append(order, items[pick].idx)
		for _, v := range patterns[items[pick].idx].Vars() {
			vars[v] = true
		}
	}
	return order
}

// joinStep executes one pattern: SPLENDID compares the cost of a hash
// join (fetch the whole pattern) with a bound join (ship current
// bindings) and picks the cheaper.
func (s *Splendid) joinStep(ctx context.Context, rows []sparql.Binding, tp sparql.TriplePattern, sources []int, first bool, boundVars map[sparql.Var]bool) ([]sparql.Binding, error) {
	shared := sharedPatternVars(tp, boundVars)
	est := s.estimate(tp, sources)
	useBound := !first && len(shared) > 0 &&
		float64(len(rows))/float64(s.cfg.BindBlockSize)*float64(len(sources)) < est

	if !useBound {
		fetched, err := s.fetchAll(ctx, tp, sources, nil)
		if err != nil {
			return nil, err
		}
		if first {
			return fetched, nil
		}
		return federation.JoinBindings(rows, fetched), nil
	}

	var out []sparql.Binding
	block := s.cfg.BindBlockSize
	for lo := 0; lo < len(rows); lo += block {
		hi := lo + block
		if hi > len(rows) {
			hi = len(rows)
		}
		blockRows := rows[lo:hi]
		vb := &sparql.ValuesBlock{Vars: shared}
		seen := map[string]bool{}
		for _, row := range blockRows {
			tuple := make([]rdf.Term, len(shared))
			for i, v := range shared {
				tuple[i] = row[v]
			}
			k := fmt.Sprint(tuple)
			if seen[k] {
				continue
			}
			seen[k] = true
			vb.Rows = append(vb.Rows, tuple)
		}
		fetched, err := s.fetchAll(ctx, tp, sources, vb)
		if err != nil {
			return nil, err
		}
		out = append(out, federation.JoinBindings(blockRows, fetched)...)
	}
	return out, nil
}

func (s *Splendid) fetchAll(ctx context.Context, tp sparql.TriplePattern, sources []int, vb *sparql.ValuesBlock) ([]sparql.Binding, error) {
	q := sparql.NewSelect()
	q.Where = &sparql.GroupGraphPattern{Patterns: []sparql.TriplePattern{tp}}
	if vb != nil {
		q.Where.Values = []*sparql.ValuesBlock{vb}
	}
	text := q.String()
	var eps []endpoint.Endpoint
	for _, ei := range sources {
		eps = append(eps, s.eps[ei])
	}
	var rows []sparql.Binding
	for _, tr := range s.handler.Broadcast(ctx, eps, text) {
		if tr.Err != nil {
			return nil, fmt.Errorf("splendid: %w", tr.Err)
		}
		rows = append(rows, tr.Res.Rows...)
	}
	// Pattern fetches project all variables; dedup across endpoints
	// for exact RDF-merge semantics.
	return federation.DedupRows(rows, tp.Vars()), nil
}

func sharedPatternVars(tp sparql.TriplePattern, bound map[sparql.Var]bool) []sparql.Var {
	var out []sparql.Var
	for _, v := range tp.Vars() {
		if bound[v] {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
