// Package baseline_test cross-validates every federated engine —
// FedX, SPLENDID, HiBISCuS, the naive reference, and Lusail — against
// the union-graph oracle, and asserts the relative behaviors the paper
// reports (request-count gaps, pruning, preprocessing cost).
package baseline_test

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"lusail/internal/baseline/fedx"
	"lusail/internal/baseline/hibiscus"
	"lusail/internal/baseline/splendid"
	"lusail/internal/core"
	"lusail/internal/endpoint"
	"lusail/internal/engine"
	"lusail/internal/federation"
	"lusail/internal/rdf"
	"lusail/internal/sparql"
	"lusail/internal/store"
	"lusail/internal/testfed"
)

// allEngines builds every engine over the endpoints.
func allEngines(t *testing.T, eps []endpoint.Endpoint) []federation.Engine {
	t.Helper()
	idx, err := splendid.BuildIndex(eps)
	if err != nil {
		t.Fatal(err)
	}
	sum, err := hibiscus.BuildSummary(eps)
	if err != nil {
		t.Fatal(err)
	}
	return []federation.Engine{
		core.New(eps, core.Config{}),
		fedx.New(eps, fedx.Config{}),
		splendid.New(eps, idx, splendid.Config{}),
		hibiscus.New(eps, sum, fedx.Config{}),
		federation.NewNaive(eps, federation.NewAskCache()),
	}
}

func oracleResult(t *testing.T, locals []*endpoint.Local, query string) []string {
	t.Helper()
	want, err := engine.New(testfed.UnionStore(locals...)).Eval(sparql.MustParse(query))
	if err != nil {
		t.Fatal(err)
	}
	return testfed.Canon(want)
}

func TestAllEnginesAgreeOnUniversityQueries(t *testing.T) {
	queries := map[string]string{
		"Qa":      testfed.Qa,
		"QaChain": testfed.QaChain,
		"disjoint": `SELECT ?s ?p WHERE {
			?s <http://ex/advisor> ?p . ?s <http://ex/takesCourse> ?c }`,
		"filter": `SELECT ?P ?A WHERE {
			?P <http://ex/PhDDegreeFrom> ?U . ?U <http://ex/address> ?A . FILTER (?A = "XXX") }`,
		"optional": `SELECT ?P ?C WHERE {
			?S <http://ex/advisor> ?P . OPTIONAL { ?P <http://ex/teacherOf> ?C } }`,
		"union": `SELECT ?x ?y WHERE {
			{ ?x <http://ex/teacherOf> ?y } UNION { ?x <http://ex/PhDDegreeFrom> ?y } }`,
		"values": `SELECT ?P ?U WHERE {
			VALUES ?P { <http://ex/Tim> <http://ex/Joy> } ?P <http://ex/PhDDegreeFrom> ?U }`,
	}
	for name, q := range queries {
		t.Run(name, func(t *testing.T) {
			ep1, ep2 := testfed.Universities()
			locals := []*endpoint.Local{ep1, ep2}
			eps := []endpoint.Endpoint{ep1, ep2}
			want := oracleResult(t, locals, q)
			for _, eng := range allEngines(t, eps) {
				got, err := eng.Execute(context.Background(), q)
				if err != nil {
					t.Errorf("%s: %v", eng.Name(), err)
					continue
				}
				if cg := testfed.Canon(got); !reflect.DeepEqual(cg, want) {
					t.Errorf("%s differs from oracle:\n got %v\nwant %v", eng.Name(), cg, want)
				}
			}
		})
	}
}

func TestFedXExclusiveGroupFormation(t *testing.T) {
	// Give EP1 two exclusive predicates: FedX must send them together.
	ep1, ep2 := testfed.Universities()
	ep1.Store().Add(rdf.T(testfed.IRI("Lee"), testfed.IRI("exclA"), testfed.IRI("X")))
	ep1.Store().Add(rdf.T(testfed.IRI("X"), testfed.IRI("exclB"), rdf.Literal("v")))
	eps := []endpoint.Endpoint{ep1, ep2}
	f := fedx.New(eps, fedx.Config{})
	q := `SELECT * WHERE {
		?s <http://ex/exclA> ?x .
		?x <http://ex/exclB> ?v .
	}`
	endpoint.ResetAll(eps)
	res, err := f.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 1 {
		t.Errorf("rows = %d", res.Len())
	}
	// Source selection: 2 patterns x 2 endpoints = 4 ASKs; execution:
	// one exclusive-group request to EP1 only.
	st := endpoint.TotalStats(eps)
	if st.Requests != 5 {
		t.Errorf("requests = %d, want 5 (4 ASK + 1 exclusive group)", st.Requests)
	}
}

func TestFedXBoundJoinBlocks(t *testing.T) {
	// 40 bindings with block size 15 => ceil(40/15) = 3 bound requests
	// per relevant source.
	st1, st2 := store.New(), store.New()
	for i := 0; i < 40; i++ {
		st1.Add(rdf.T(testfed.IRI(fmt.Sprintf("s%d", i)), testfed.IRI("a"), testfed.IRI(fmt.Sprintf("m%d", i))))
		st2.Add(rdf.T(testfed.IRI(fmt.Sprintf("m%d", i)), testfed.IRI("b"), rdf.Integer(int64(i))))
	}
	ep1 := endpoint.NewLocal("ep1", st1)
	ep2 := endpoint.NewLocal("ep2", st2)
	eps := []endpoint.Endpoint{ep1, ep2}
	f := fedx.New(eps, fedx.Config{BoundBlockSize: 15})
	q := `SELECT * WHERE { ?s <http://ex/a> ?m . ?m <http://ex/b> ?v . }`
	res, err := f.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 40 {
		t.Fatalf("rows = %d, want 40", res.Len())
	}
	// ep2 receives: 1 ASK per pattern (2) + 3 bound-join blocks.
	if got := ep2.Stats().Requests; got != 5 {
		t.Errorf("ep2 requests = %d, want 5 (2 ASK + 3 blocks)", got)
	}
}

func TestLusailBeatsFedXOnRequests(t *testing.T) {
	// The paper's central claim (Fig. 3 / Fig. 12): with similar
	// schemas at every endpoint, FedX degenerates to one pattern at a
	// time with bound joins while Lusail ships whole subqueries.
	st1, st2 := store.New(), store.New()
	for e, st := range []*store.Store{st1, st2} {
		for i := 0; i < 300; i++ {
			s := testfed.IRI(fmt.Sprintf("stu%d_%d", e, i))
			p := testfed.IRI(fmt.Sprintf("prof%d_%d", e, i%7))
			c := testfed.IRI(fmt.Sprintf("course%d_%d", e, i%5))
			st.Add(rdf.T(s, testfed.IRI("advisor"), p))
			st.Add(rdf.T(s, testfed.IRI("takesCourse"), c))
			st.Add(rdf.T(p, testfed.IRI("teacherOf"), c))
		}
	}
	ep1, ep2 := endpoint.NewLocal("ep1", st1), endpoint.NewLocal("ep2", st2)
	eps := []endpoint.Endpoint{ep1, ep2}
	q := `SELECT ?s ?p ?c WHERE {
		?s <http://ex/advisor> ?p .
		?s <http://ex/takesCourse> ?c .
		?p <http://ex/teacherOf> ?c .
	}`

	endpoint.ResetAll(eps)
	l := core.New(eps, core.Config{})
	resL, err := l.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	lusailReqs := endpoint.TotalStats(eps).Requests

	endpoint.ResetAll(eps)
	f := fedx.New(eps, fedx.Config{})
	resF, err := f.Execute(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	fedxReqs := endpoint.TotalStats(eps).Requests

	if !reflect.DeepEqual(testfed.Canon(resL), testfed.Canon(resF)) {
		t.Fatal("lusail and fedx disagree on results")
	}
	if fedxReqs < 3*lusailReqs {
		t.Errorf("expected FedX to need far more requests: lusail=%d fedx=%d", lusailReqs, fedxReqs)
	}
}

func TestSplendidIndexBuild(t *testing.T) {
	ep1, ep2 := testfed.Universities()
	eps := []endpoint.Endpoint{ep1, ep2}
	idx, err := splendid.BuildIndex(eps)
	if err != nil {
		t.Fatal(err)
	}
	if len(idx.ByEndpoint) != 2 {
		t.Fatalf("index endpoints = %d", len(idx.ByEndpoint))
	}
	info, ok := idx.ByEndpoint[0]["http://ex/advisor"]
	if !ok || info.Triples != 2 {
		t.Errorf("EP1 advisor info = %+v ok=%v", info, ok)
	}
	total := ep1.Store().Len() + ep2.Store().Len()
	if idx.TriplesScanned != total {
		t.Errorf("scanned = %d, want %d (cost grows with data size)", idx.TriplesScanned, total)
	}
}

func TestSplendidSourceSelectionFromIndex(t *testing.T) {
	// SPLENDID should not send ASK queries for constant-predicate
	// patterns: the index answers them.
	ep1, ep2 := testfed.Universities()
	eps := []endpoint.Endpoint{ep1, ep2}
	idx, _ := splendid.BuildIndex(eps)
	s := splendid.New(eps, idx, splendid.Config{})
	endpoint.ResetAll(eps)
	if _, err := s.Execute(context.Background(), `SELECT ?x WHERE { ?x <http://ex/teacherOf> ?c }`); err != nil {
		t.Fatal(err)
	}
	// Only data requests: one per relevant endpoint, no ASK.
	if got := endpoint.TotalStats(eps).Requests; got != 2 {
		t.Errorf("requests = %d, want 2 (index-only source selection)", got)
	}
}

func TestHiBISCuSPrunesByAuthority(t *testing.T) {
	// Two endpoints with distinct authorities; a join whose object
	// authorities only occur at one endpoint must prune the other.
	stA, stB := store.New(), store.New()
	// dbpedia hosts people; geo hosts places. person -> bornIn -> place.
	for i := 0; i < 5; i++ {
		person := rdf.IRI(fmt.Sprintf("http://dbpedia.org/p%d", i))
		place := rdf.IRI(fmt.Sprintf("http://geo.org/city%d", i))
		stA.Add(rdf.T(person, rdf.IRI("http://ex/bornIn"), place))
		stB.Add(rdf.T(place, rdf.IRI("http://ex/population"), rdf.Integer(int64(1000*i))))
	}
	// B also has bornIn triples, but pointing at B-internal entities
	// with no population data elsewhere.
	stB.Add(rdf.T(rdf.IRI("http://other.org/px"), rdf.IRI("http://ex/bornIn"), rdf.IRI("http://nowhere.org/cx")))
	epA, epB := endpoint.NewLocal("A", stA), endpoint.NewLocal("B", stB)
	eps := []endpoint.Endpoint{epA, epB}
	sum, err := hibiscus.BuildSummary(eps)
	if err != nil {
		t.Fatal(err)
	}
	sel := hibiscus.NewSelector(eps, sum)
	q := sparql.MustParse(`SELECT * WHERE {
		?p <http://ex/bornIn> ?c .
		?c <http://ex/population> ?n .
	}`)
	selection, err := sel.SelectPatterns(context.Background(), q.Where.Patterns)
	if err != nil {
		t.Fatal(err)
	}
	// bornIn is ASK-relevant at both endpoints, but B's bornIn objects
	// (nowhere.org) cannot join population subjects (geo.org), so B is
	// pruned for the bornIn pattern.
	if !reflect.DeepEqual(selection.Sources[0], []int{0}) {
		t.Errorf("bornIn sources = %v, want [0] after pruning", selection.Sources[0])
	}
	// The full engine still returns correct results.
	h := hibiscus.New(eps, sum, fedx.Config{})
	res, err := h.Execute(context.Background(), `SELECT * WHERE {
		?p <http://ex/bornIn> ?c . ?c <http://ex/population> ?n }`)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 5 {
		t.Errorf("rows = %d, want 5", res.Len())
	}
}

// TestQuickAllEnginesAgree is the cross-engine property test: every
// engine returns the oracle answer on random federations and queries.
func TestQuickAllEnginesAgree(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 + r.Intn(2)
		preds := []string{"p0", "p1", "p2"}
		locals := make([]*endpoint.Local, n)
		for e := 0; e < n; e++ {
			st := store.New()
			for i := 0; i < 10+r.Intn(15); i++ {
				s := testfed.IRI(fmt.Sprintf("e%d_%d", e, r.Intn(6)))
				p := testfed.IRI(preds[r.Intn(len(preds))])
				var o rdf.Term
				if r.Intn(3) == 0 {
					o = testfed.IRI(fmt.Sprintf("e%d_%d", r.Intn(n), r.Intn(6)))
				} else {
					o = testfed.IRI(fmt.Sprintf("e%d_%d", e, r.Intn(6)))
				}
				st.Add(rdf.T(s, p, o))
			}
			locals[e] = endpoint.NewLocal(fmt.Sprintf("ep%d", e), st)
		}
		eps := make([]endpoint.Endpoint, n)
		for i := range locals {
			eps[i] = locals[i]
		}
		vars := []string{"a", "b", "c", "d"}
		np := 2 + r.Intn(2)
		query := "SELECT * WHERE {\n"
		for i := 0; i < np; i++ {
			query += fmt.Sprintf("?%s <http://ex/%s> ?%s .\n",
				vars[r.Intn(i+1)], preds[r.Intn(len(preds))], vars[i+1])
		}
		query += "}"

		want, err := engine.New(testfed.UnionStore(locals...)).Eval(sparql.MustParse(query))
		if err != nil {
			return false
		}
		cw := testfed.Canon(want)

		idx, err := splendid.BuildIndex(eps)
		if err != nil {
			return false
		}
		sum, err := hibiscus.BuildSummary(eps)
		if err != nil {
			return false
		}
		engines := []federation.Engine{
			core.New(eps, core.Config{}),
			fedx.New(eps, fedx.Config{BoundBlockSize: 5}),
			splendid.New(eps, idx, splendid.Config{BindBlockSize: 4}),
			hibiscus.New(eps, sum, fedx.Config{}),
		}
		for _, eng := range engines {
			got, err := eng.Execute(context.Background(), query)
			if err != nil {
				t.Logf("seed %d %s: %v\n%s", seed, eng.Name(), err, query)
				return false
			}
			if cg := testfed.Canon(got); !reflect.DeepEqual(cg, cw) {
				t.Logf("seed %d %s mismatch\n%s\n got %v\nwant %v", seed, eng.Name(), query, cg, cw)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
