// Package fedx reimplements the FedX federated SPARQL engine
// (Schwarte et al., ISWC 2011), the paper's primary index-free
// competitor: ASK-based source selection with caching, exclusive
// groups, variable-counting join ordering, and block nested-loop
// bound joins. Its request count scales with intermediate-result
// size, which is exactly the behavior Figures 3, 11, 12 and 13 of the
// Lusail paper measure.
package fedx

import (
	"context"
	"fmt"
	"sort"

	"lusail/internal/endpoint"
	"lusail/internal/engine"
	"lusail/internal/federation"
	"lusail/internal/rdf"
	"lusail/internal/sparql"
)

// Config tunes FedX.
type Config struct {
	// BoundBlockSize is the bind-join block size (FedX default: 15).
	BoundBlockSize int
}

// FedX is the engine.
type FedX struct {
	eps         []endpoint.Endpoint
	cfg         Config
	selector    *federation.Selector
	altSelector SourceSelector
	handler     *federation.Handler
}

// New builds a FedX engine over the endpoints with a shared ASK cache.
func New(eps []endpoint.Endpoint, cfg Config) *FedX {
	if cfg.BoundBlockSize == 0 {
		cfg.BoundBlockSize = 15
	}
	return &FedX{
		eps:      eps,
		cfg:      cfg,
		selector: federation.NewSelector(eps, federation.NewAskCache()),
		handler:  federation.NewHandler(len(eps)),
	}
}

// Name implements federation.Engine.
func (f *FedX) Name() string { return "fedx" }

// SetSelector overrides source selection; the HiBISCuS add-on uses it
// to layer summary-based pruning on the FedX executor.
func (f *FedX) SetSelector(sel SourceSelector) { f.altSelector = sel }

// SourceSelector abstracts source selection so HiBISCuS can replace
// it.
type SourceSelector interface {
	SelectPatterns(ctx context.Context, patterns []sparql.TriplePattern) (*federation.Selection, error)
}

// Execute runs the query.
func (f *FedX) Execute(ctx context.Context, query string) (*sparql.Results, error) {
	q, err := sparql.Parse(query)
	if err != nil {
		return nil, err
	}
	rows, err := f.evalGroup(ctx, q.Where)
	if err != nil {
		return nil, err
	}
	if q.Form == sparql.AskForm {
		return sparql.NewAskResult(len(rows) > 0), nil
	}
	return engine.Finalize(q, rows), nil
}

func (f *FedX) selectPatterns(ctx context.Context, patterns []sparql.TriplePattern) (*federation.Selection, error) {
	if f.altSelector != nil {
		return f.altSelector.SelectPatterns(ctx, patterns)
	}
	return f.selector.SelectPatterns(ctx, patterns)
}

// unit is one execution step: an exclusive group (several patterns at
// a single source) or an individual pattern (multiple sources).
type unit struct {
	patterns []sparql.TriplePattern
	sources  []int
	filters  []sparql.Expr
}

func (u *unit) vars() []sparql.Var {
	var out []sparql.Var
	seen := map[sparql.Var]bool{}
	for _, tp := range u.patterns {
		for _, v := range tp.Vars() {
			if !seen[v] {
				seen[v] = true
				out = append(out, v)
			}
		}
	}
	return out
}

// freeVarCount is FedX's variable-counting heuristic score given the
// variables bound so far.
func (u *unit) freeVarCount(bound map[sparql.Var]bool) int {
	n := 0
	for _, v := range u.vars() {
		if !bound[v] {
			n++
		}
	}
	return n
}

func (f *FedX) evalGroup(ctx context.Context, g *sparql.GroupGraphPattern) ([]sparql.Binding, error) {
	sel, err := f.selectPatterns(ctx, g.Patterns)
	if err != nil {
		return nil, err
	}
	for i := range g.Patterns {
		if len(sel.Sources[i]) == 0 {
			return nil, nil
		}
	}

	units := exclusiveGroups(g.Patterns, sel)
	pushFilters(units, g.Filters)
	residual := residualFilters(units, g.Filters)
	for _, fl := range residual {
		if _, ok := fl.(*sparql.ExistsExpr); ok {
			return nil, fmt.Errorf("fedx: FILTER EXISTS spanning groups is not supported")
		}
	}

	rows, err := f.runUnits(ctx, units)
	if err != nil {
		return nil, err
	}

	// VALUES blocks join at the mediator.
	for _, vb := range g.Values {
		rows = federation.JoinBindings(rows, federation.ValuesRows(vb))
	}
	// UNION blocks: evaluate alternatives, union, join.
	for _, u := range g.Unions {
		var alt []sparql.Binding
		for _, a := range u.Alternatives {
			r, err := f.evalGroup(ctx, a)
			if err != nil {
				return nil, err
			}
			alt = append(alt, r...)
		}
		rows = federation.JoinBindings(rows, alt)
	}
	// OPTIONAL: left join at the mediator.
	for _, og := range g.Optionals {
		ofilters := og.Filters
		trimmed := og.Clone()
		trimmed.Filters = nil
		right, err := f.evalGroup(ctx, trimmed)
		if err != nil {
			return nil, err
		}
		rows = federation.LeftJoinBindings(rows, right, ofilters)
	}
	// Residual filters.
	var out []sparql.Binding
	for _, row := range rows {
		keep := true
		for _, fl := range residual {
			ok, err := sparql.EvalBool(fl, row, nil)
			if err != nil || !ok {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, row)
		}
	}
	return out, nil
}

// exclusiveGroups builds FedX's execution units: patterns whose single
// relevant source coincides are grouped; all other patterns stay
// individual.
func exclusiveGroups(patterns []sparql.TriplePattern, sel *federation.Selection) []*unit {
	perSource := map[int][]sparql.TriplePattern{}
	var units []*unit
	for i, tp := range patterns {
		srcs := sel.Sources[i]
		if len(srcs) == 1 {
			perSource[srcs[0]] = append(perSource[srcs[0]], tp)
			continue
		}
		units = append(units, &unit{patterns: []sparql.TriplePattern{tp}, sources: srcs})
	}
	var keys []int
	for k := range perSource {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	for _, k := range keys {
		units = append(units, &unit{patterns: perSource[k], sources: []int{k}})
	}
	return units
}

// pushFilters pushes a filter into every unit binding all its
// variables.
func pushFilters(units []*unit, filters []sparql.Expr) {
	for _, fl := range filters {
		if _, ok := fl.(*sparql.ExistsExpr); ok {
			continue
		}
		vars := fl.Vars()
		for _, u := range units {
			uv := map[sparql.Var]bool{}
			for _, v := range u.vars() {
				uv[v] = true
			}
			all := len(vars) > 0
			for _, v := range vars {
				if !uv[v] {
					all = false
					break
				}
			}
			if all {
				u.filters = append(u.filters, fl)
			}
		}
	}
}

func residualFilters(units []*unit, filters []sparql.Expr) []sparql.Expr {
	var out []sparql.Expr
	for _, fl := range filters {
		pushed := false
		for _, u := range units {
			for _, uf := range u.filters {
				if uf == fl {
					pushed = true
				}
			}
		}
		if !pushed {
			out = append(out, fl)
		}
	}
	return out
}

// runUnits executes units in variable-counting order: the first unit
// is evaluated unbound; each following unit is evaluated as a block
// nested-loop bound join against the intermediate rows.
func (f *FedX) runUnits(ctx context.Context, units []*unit) ([]sparql.Binding, error) {
	if len(units) == 0 {
		return []sparql.Binding{{}}, nil
	}
	remaining := append([]*unit(nil), units...)
	bound := map[sparql.Var]bool{}
	var rows []sparql.Binding
	first := true
	for len(remaining) > 0 {
		// Pick the next unit: fewest free variables; exclusive groups
		// (single source) win ties.
		best := 0
		for i := 1; i < len(remaining); i++ {
			a, b := remaining[i], remaining[best]
			fa, fb := a.freeVarCount(bound), b.freeVarCount(bound)
			if fa < fb || (fa == fb && len(a.sources) < len(b.sources)) {
				best = i
			}
		}
		u := remaining[best]
		remaining = append(remaining[:best], remaining[best+1:]...)

		var err error
		if first {
			rows, err = f.evalUnitUnbound(ctx, u)
			first = false
		} else {
			rows, err = f.boundJoin(ctx, rows, u)
		}
		if err != nil {
			return nil, err
		}
		if len(rows) == 0 {
			return nil, nil
		}
		for _, v := range u.vars() {
			bound[v] = true
		}
	}
	return rows, nil
}

func (u *unit) query(extraValues *sparql.ValuesBlock) string {
	q := sparql.NewSelect()
	q.Where = &sparql.GroupGraphPattern{
		Patterns: append([]sparql.TriplePattern(nil), u.patterns...),
		Filters:  append([]sparql.Expr(nil), u.filters...),
	}
	if extraValues != nil {
		q.Where.Values = []*sparql.ValuesBlock{extraValues}
	}
	return q.String()
}

func (f *FedX) evalUnitUnbound(ctx context.Context, u *unit) ([]sparql.Binding, error) {
	text := u.query(nil)
	var rows []sparql.Binding
	for _, tr := range f.handler.Broadcast(ctx, pick(f.eps, u.sources), text) {
		if tr.Err != nil {
			return nil, fmt.Errorf("fedx: %w", tr.Err)
		}
		rows = append(rows, tr.Res.Rows...)
	}
	// Units project all their variables, so deduplication across
	// endpoints gives exact RDF-merge semantics for triples replicated
	// at several sources.
	return federation.DedupRows(rows, u.vars()), nil
}

// boundJoin is FedX's block nested-loop join: the intermediate rows
// are split into blocks; each block's shared-variable tuples are
// attached to the unit's query as a VALUES clause and shipped to every
// relevant source.
func (f *FedX) boundJoin(ctx context.Context, rows []sparql.Binding, u *unit) ([]sparql.Binding, error) {
	shared := sharedVars(rows, u)
	if len(shared) == 0 {
		// Cartesian: evaluate unbound and join.
		right, err := f.evalUnitUnbound(ctx, u)
		if err != nil {
			return nil, err
		}
		return federation.JoinBindings(rows, right), nil
	}
	block := f.cfg.BoundBlockSize
	var out []sparql.Binding
	for lo := 0; lo < len(rows); lo += block {
		hi := lo + block
		if hi > len(rows) {
			hi = len(rows)
		}
		blockRows := rows[lo:hi]
		vb := &sparql.ValuesBlock{Vars: shared}
		seen := map[string]bool{}
		for _, row := range blockRows {
			tuple := make([]rdf.Term, len(shared))
			for i, v := range shared {
				tuple[i] = row[v]
			}
			key := sparql.Binding{}
			for i, v := range shared {
				key[v] = tuple[i]
			}
			k := key.Key(shared)
			if seen[k] {
				continue
			}
			seen[k] = true
			vb.Rows = append(vb.Rows, tuple)
		}
		text := u.query(vb)
		var fetched []sparql.Binding
		for _, tr := range f.handler.Broadcast(ctx, pick(f.eps, u.sources), text) {
			if tr.Err != nil {
				return nil, fmt.Errorf("fedx bound join: %w", tr.Err)
			}
			fetched = append(fetched, tr.Res.Rows...)
		}
		fetched = federation.DedupRows(fetched, u.vars())
		out = append(out, federation.JoinBindings(blockRows, fetched)...)
	}
	return out, nil
}

func sharedVars(rows []sparql.Binding, u *unit) []sparql.Var {
	certain := federation.CertainVars(rows)
	var out []sparql.Var
	for _, v := range u.vars() {
		if certain[v] {
			out = append(out, v)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func pick(eps []endpoint.Endpoint, idxs []int) []endpoint.Endpoint {
	out := make([]endpoint.Endpoint, len(idxs))
	for i, x := range idxs {
		out[i] = eps[x]
	}
	return out
}
