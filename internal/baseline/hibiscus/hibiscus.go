// Package hibiscus reimplements HiBISCuS (Saleem & Ngonga Ngomo,
// ESWC 2014): hypergraph/authority-based source pruning layered on top
// of a FedX-style executor. A precomputed summary records, per
// endpoint and predicate, the IRI authorities occurring in subject and
// object position; during source selection, a source is pruned for a
// triple pattern when its authorities cannot join with the authorities
// any other pattern sharing a variable can produce.
package hibiscus

import (
	"context"
	"fmt"
	"time"

	"lusail/internal/baseline/fedx"
	"lusail/internal/endpoint"
	"lusail/internal/federation"
	"lusail/internal/sparql"
	"lusail/internal/store"
)

// Summary is the precomputed per-endpoint capability index.
type Summary struct {
	// SubjAuth[e][pred] is the set of subject authorities of pred at
	// endpoint e; ObjAuth likewise for objects.
	SubjAuth  []map[string]map[string]struct{}
	ObjAuth   []map[string]map[string]struct{}
	BuildTime time.Duration
}

// BuildSummary scans every endpoint's data, as HiBISCuS's offline
// indexing phase does.
func BuildSummary(eps []endpoint.Endpoint) (*Summary, error) {
	start := time.Now()
	s := &Summary{
		SubjAuth: make([]map[string]map[string]struct{}, len(eps)),
		ObjAuth:  make([]map[string]map[string]struct{}, len(eps)),
	}
	for i, ep := range eps {
		local, ok := ep.(interface{ Store() *store.Store })
		if !ok {
			return nil, fmt.Errorf("hibiscus: endpoint %s does not expose data for summarization", ep.Name())
		}
		st := local.Store()
		s.SubjAuth[i] = map[string]map[string]struct{}{}
		s.ObjAuth[i] = map[string]map[string]struct{}{}
		for _, p := range st.Predicates() {
			s.SubjAuth[i][p.Value] = st.Authorities(p, false)
			s.ObjAuth[i][p.Value] = st.Authorities(p, true)
		}
	}
	s.BuildTime = time.Since(start)
	return s, nil
}

// Selector implements fedx.SourceSelector: ASK-based selection
// followed by authority-based join-aware pruning.
type Selector struct {
	eps     []endpoint.Endpoint
	base    *federation.Selector
	summary *Summary
}

// NewSelector wraps the default ASK selector with summary pruning.
func NewSelector(eps []endpoint.Endpoint, summary *Summary) *Selector {
	return &Selector{
		eps:     eps,
		base:    federation.NewSelector(eps, federation.NewAskCache()),
		summary: summary,
	}
}

// SelectPatterns selects candidate sources per pattern and prunes
// those whose authority sets cannot contribute to any join.
func (s *Selector) SelectPatterns(ctx context.Context, patterns []sparql.TriplePattern) (*federation.Selection, error) {
	sel, err := s.base.SelectPatterns(ctx, patterns)
	if err != nil {
		return nil, err
	}
	// For each join variable, gather per (pattern, source) the
	// authority set the variable's position can produce, then prune
	// sources whose set is disjoint from the union of every other
	// pattern's sets.
	occ := map[sparql.Var][]varUse{}
	for pi, tp := range patterns {
		if tp.S.IsVar() {
			occ[tp.S.Var] = append(occ[tp.S.Var], varUse{pattern: pi, subject: true})
		}
		if tp.O.IsVar() {
			occ[tp.O.Var] = append(occ[tp.O.Var], varUse{pattern: pi, subject: false})
		}
	}
	for _, uses := range occ {
		if len(uses) < 2 {
			continue
		}
		s.pruneVar(patterns, sel, uses)
	}
	return sel, nil
}

type varUse struct {
	pattern int
	subject bool
}

func (s *Selector) pruneVar(patterns []sparql.TriplePattern, sel *federation.Selection, uses []varUse) {
	// auths[i][src] is the authority set for use i at source src; nil
	// means "unknown" (variable predicate or literal-heavy position),
	// which never prunes.
	auths := make([]map[int]map[string]struct{}, len(uses))
	for i, u := range uses {
		tp := patterns[u.pattern]
		if tp.P.IsVar() {
			continue
		}
		auths[i] = map[int]map[string]struct{}{}
		for _, src := range sel.Sources[u.pattern] {
			var set map[string]struct{}
			if u.subject {
				set = s.summary.SubjAuth[src][tp.P.Term.Value]
			} else {
				set = s.summary.ObjAuth[src][tp.P.Term.Value]
			}
			auths[i][src] = set
		}
	}
	for i, u := range uses {
		if auths[i] == nil {
			continue
		}
		// The union of what all other uses can produce.
		others := map[string]struct{}{}
		known := true
		for j := range uses {
			if j == i {
				continue
			}
			if auths[j] == nil {
				known = false
				break
			}
			for _, set := range auths[j] {
				for a := range set {
					others[a] = struct{}{}
				}
			}
		}
		if !known {
			continue
		}
		var kept []int
		for _, src := range sel.Sources[u.pattern] {
			set := auths[i][src]
			if intersects(set, others) {
				kept = append(kept, src)
			}
		}
		// Object positions dominated by literals produce empty
		// authority sets; never prune a source down to nothing on that
		// evidence alone.
		if len(kept) > 0 {
			sel.Sources[u.pattern] = kept
		}
	}
}

func intersects(a map[string]struct{}, b map[string]struct{}) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	if len(b) < len(a) {
		a, b = b, a
	}
	for x := range a {
		if _, ok := b[x]; ok {
			return true
		}
	}
	return false
}

// New builds the complete HiBISCuS engine: the FedX executor with the
// summary-pruned selector.
func New(eps []endpoint.Endpoint, summary *Summary, cfg fedx.Config) *Engine {
	f := fedx.New(eps, cfg)
	f.SetSelector(NewSelector(eps, summary))
	return &Engine{inner: f}
}

// Engine wraps FedX under the HiBISCuS name.
type Engine struct {
	inner *fedx.FedX
}

// Name implements federation.Engine.
func (e *Engine) Name() string { return "hibiscus" }

// Execute implements federation.Engine.
func (e *Engine) Execute(ctx context.Context, query string) (*sparql.Results, error) {
	return e.inner.Execute(ctx, query)
}
