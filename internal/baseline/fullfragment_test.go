package baseline_test

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"lusail/internal/baseline/fedx"
	"lusail/internal/baseline/hibiscus"
	"lusail/internal/baseline/splendid"
	"lusail/internal/core"
	"lusail/internal/endpoint"
	"lusail/internal/engine"
	"lusail/internal/federation"
	"lusail/internal/rdf"
	"lusail/internal/sparql"
	"lusail/internal/store"
	"lusail/internal/testfed"
)

// randomFullQuery builds a query over preds p0..p2 exercising the full
// supported fragment: a connected BGP, optionally an OPTIONAL group, a
// UNION block, a FILTER, and DISTINCT.
func randomFullQuery(r *rand.Rand) string {
	vars := []string{"a", "b", "c", "d", "e", "f"}
	next := 1
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if r.Intn(4) == 0 {
		sb.WriteString("DISTINCT ")
	}
	sb.WriteString("* WHERE {\n")
	// Base BGP: 1-2 connected patterns.
	base := 1 + r.Intn(2)
	for i := 0; i < base; i++ {
		s := vars[r.Intn(next)]
		o := vars[next]
		next++
		fmt.Fprintf(&sb, "?%s <http://ex/p%d> ?%s .\n", s, r.Intn(3), o)
	}
	// OPTIONAL sharing a bound variable.
	if r.Intn(2) == 0 {
		s := vars[r.Intn(next)]
		o := vars[next]
		next++
		fmt.Fprintf(&sb, "OPTIONAL { ?%s <http://ex/p%d> ?%s . }\n", s, r.Intn(3), o)
	}
	// UNION over two predicates.
	if r.Intn(2) == 0 {
		s := vars[r.Intn(next)]
		o := vars[next]
		next++
		fmt.Fprintf(&sb, "{ ?%s <http://ex/p0> ?%s } UNION { ?%s <http://ex/p1> ?%s }\n", s, o, s, o)
	}
	// FILTER over bound variables.
	switch r.Intn(3) {
	case 0:
		v := vars[r.Intn(next)]
		fmt.Fprintf(&sb, "FILTER (STRSTARTS(STR(?%s), \"http://ex/e0\"))\n", v)
	case 1:
		a, b := vars[r.Intn(next)], vars[r.Intn(next)]
		fmt.Fprintf(&sb, "FILTER (?%s != ?%s)\n", a, b)
	}
	sb.WriteString("}")
	return sb.String()
}

// TestQuickFullFragmentAllEngines is the repository's broadest
// correctness property: randomized federations and randomized queries
// over the full supported fragment, across every engine and Lusail
// configuration, must match the union-graph oracle exactly.
func TestQuickFullFragmentAllEngines(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		nEP := 2 + r.Intn(2)
		locals := make([]*endpoint.Local, nEP)
		for e := 0; e < nEP; e++ {
			st := store.New()
			for i := 0; i < 12+r.Intn(12); i++ {
				s := testfed.IRI(fmt.Sprintf("e%d_%d", e, r.Intn(5)))
				p := testfed.IRI(fmt.Sprintf("p%d", r.Intn(3)))
				var o rdf.Term
				if r.Intn(3) == 0 {
					o = testfed.IRI(fmt.Sprintf("e%d_%d", r.Intn(nEP), r.Intn(5)))
				} else {
					o = testfed.IRI(fmt.Sprintf("e%d_%d", e, r.Intn(5)))
				}
				st.Add(rdf.T(s, p, o))
			}
			locals[e] = endpoint.NewLocal(fmt.Sprintf("ep%d", e), st)
		}
		eps := make([]endpoint.Endpoint, nEP)
		for i := range locals {
			eps[i] = locals[i]
		}
		query := randomFullQuery(r)
		parsed, err := sparql.Parse(query)
		if err != nil {
			t.Logf("seed %d: generator produced invalid query: %v\n%s", seed, err, query)
			return false
		}
		want, err := engine.New(testfed.UnionStore(locals...)).Eval(parsed)
		if err != nil {
			t.Logf("seed %d oracle: %v", seed, err)
			return false
		}
		cw := testfed.Canon(want)

		idx, err := splendid.BuildIndex(eps)
		if err != nil {
			return false
		}
		sum, err := hibiscus.BuildSummary(eps)
		if err != nil {
			return false
		}
		engines := []federation.Engine{
			core.New(eps, core.Config{}),
			core.New(eps, core.Config{TraversalDecomposer: true, DelayPolicy: core.DelayAll, BindBlockSize: 3}),
			core.New(eps, core.Config{AssumeAllGlobal: true, DelayPolicy: core.DelayNone}),
			fedx.New(eps, fedx.Config{BoundBlockSize: 4}),
			splendid.New(eps, idx, splendid.Config{BindBlockSize: 3}),
			hibiscus.New(eps, sum, fedx.Config{}),
			federation.NewNaive(eps, federation.NewAskCache()),
		}
		for i, eng := range engines {
			got, err := eng.Execute(context.Background(), query)
			if err != nil {
				t.Logf("seed %d engine %d (%s): %v\n%s", seed, i, eng.Name(), err, query)
				return false
			}
			if cg := testfed.Canon(got); !reflect.DeepEqual(cg, cw) {
				t.Logf("seed %d engine %d (%s) mismatch (%d vs %d rows)\n%s",
					seed, i, eng.Name(), len(cg), len(cw), query)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
