package sparql

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"lusail/internal/rdf"
)

// Results holds the outcome of evaluating a query: a boolean for ASK
// queries, or a solution sequence for SELECT queries.
type Results struct {
	// Ask is meaningful when the query form was ASK.
	Ask bool
	// AskForm marks the result as an ASK result.
	AskForm bool
	// Vars is the header (projection order).
	Vars []Var
	// Rows are the solutions.
	Rows []Binding
	// Completeness, when non-nil, reports whether the result is exact
	// or which endpoint/subquery contributions a degraded execution
	// dropped. Results from healthy executions leave it nil.
	Completeness *Completeness `json:"-"`
	// Streamed counts rows that were delivered through a streaming
	// sink instead of materialized into Rows. A streamed execution's
	// summary result has empty Rows and non-zero Streamed.
	Streamed int `json:"-"`
}

// NewAskResult builds an ASK result.
func NewAskResult(v bool) *Results { return &Results{AskForm: true, Ask: v} }

// Len returns the number of solution rows (for streamed executions,
// the number of rows delivered through the sink).
func (r *Results) Len() int {
	if r.Rows == nil && r.Streamed > 0 {
		return r.Streamed
	}
	return len(r.Rows)
}

// Sort orders rows deterministically by the rendered values of Vars;
// used by tests and stable output. Each row's sort key is rendered
// exactly once up front — re-rendering inside the comparator costs
// O(n log n) key constructions and dominated sorting wide results.
func (r *Results) Sort() {
	keys := KeyColumn(r.Rows, r.Vars)
	sort.Sort(&rowSorter{keys: keys, rows: r.Rows})
}

// rowSorter sorts rows and their precomputed keys in lockstep.
type rowSorter struct {
	keys []string
	rows []Binding
}

func (s *rowSorter) Len() int           { return len(s.rows) }
func (s *rowSorter) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *rowSorter) Swap(i, j int) {
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
	s.rows[i], s.rows[j] = s.rows[j], s.rows[i]
}

// Project returns a copy of the results restricted to vars.
func (r *Results) Project(vars []Var) *Results {
	out := &Results{Vars: append([]Var(nil), vars...)}
	out.Rows = make([]Binding, 0, len(r.Rows))
	for _, row := range r.Rows {
		nb := make(Binding, len(vars))
		for _, v := range vars {
			if t, ok := row[v]; ok {
				nb[v] = t
			}
		}
		out.Rows = append(out.Rows, nb)
	}
	return out
}

// jsonResults mirrors the SPARQL 1.1 Query Results JSON Format.
type jsonResults struct {
	Head    jsonHead     `json:"head"`
	Boolean *bool        `json:"boolean,omitempty"`
	Results *jsonBindSet `json:"results,omitempty"`
}

type jsonHead struct {
	Vars []string `json:"vars"`
}

type jsonBindSet struct {
	Bindings []map[string]jsonTerm `json:"bindings"`
}

type jsonTerm struct {
	Type     string `json:"type"` // "uri", "literal", "bnode"
	Value    string `json:"value"`
	Datatype string `json:"datatype,omitempty"`
	Lang     string `json:"xml:lang,omitempty"`
}

// EncodeJSON writes r in the SPARQL 1.1 JSON results format.
func (r *Results) EncodeJSON(w io.Writer) error {
	jr := jsonResults{}
	if r.AskForm {
		b := r.Ask
		jr.Boolean = &b
	} else {
		jr.Head.Vars = make([]string, len(r.Vars))
		for i, v := range r.Vars {
			jr.Head.Vars[i] = string(v)
		}
		set := &jsonBindSet{Bindings: make([]map[string]jsonTerm, 0, len(r.Rows))}
		for _, row := range r.Rows {
			m := make(map[string]jsonTerm, len(row))
			for v, t := range row {
				m[string(v)] = termToJSON(t)
			}
			set.Bindings = append(set.Bindings, m)
		}
		jr.Results = set
	}
	return json.NewEncoder(w).Encode(jr)
}

// DecodeJSON reads the SPARQL 1.1 JSON results format. It streams:
// rows are decoded incrementally from r (no whole-payload buffering)
// with repeated terms interned; see DecodeJSONStream.
func DecodeJSON(r io.Reader) (*Results, error) {
	return DecodeJSONStream(r)
}

func termToJSON(t rdf.Term) jsonTerm {
	switch t.Kind {
	case rdf.KindIRI:
		return jsonTerm{Type: "uri", Value: t.Value}
	case rdf.KindBlank:
		return jsonTerm{Type: "bnode", Value: t.Value}
	default:
		return jsonTerm{Type: "literal", Value: t.Value, Datatype: t.Datatype, Lang: t.Lang}
	}
}

func termFromJSON(jt jsonTerm) (rdf.Term, error) {
	switch jt.Type {
	case "uri":
		return rdf.IRI(jt.Value), nil
	case "bnode":
		return rdf.Blank(jt.Value), nil
	case "literal", "typed-literal":
		switch {
		case jt.Lang != "":
			return rdf.LangLiteral(jt.Value, jt.Lang), nil
		case jt.Datatype != "":
			return rdf.TypedLiteral(jt.Value, jt.Datatype), nil
		default:
			return rdf.Literal(jt.Value), nil
		}
	default:
		return rdf.Term{}, fmt.Errorf("sparql: unknown JSON term type %q", jt.Type)
	}
}

// ApproxWireBytes estimates the serialized size of the results in
// bytes; the endpoint latency simulator charges bandwidth cost with
// it without paying for a real serialization.
func (r *Results) ApproxWireBytes() int64 {
	if r.AskForm {
		return 64
	}
	var n int64 = 64
	for _, v := range r.Vars {
		n += int64(len(v)) + 8
	}
	for _, row := range r.Rows {
		for v, t := range row {
			n += int64(len(v)) + int64(len(t.Value)) + int64(len(t.Datatype)) + int64(len(t.Lang)) + 32
		}
	}
	return n
}
