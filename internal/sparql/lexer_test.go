package sparql

import (
	"testing"
)

func lexKinds(t *testing.T, input string) []token {
	t.Helper()
	toks, err := lex(input)
	if err != nil {
		t.Fatalf("lex(%q): %v", input, err)
	}
	return toks
}

func TestLexIRIVersusLessThan(t *testing.T) {
	// '<' opens an IRI only when a '>' follows before whitespace.
	toks := lexKinds(t, `?x < 5`)
	if toks[1].kind != tokPunct || toks[1].text != "<" {
		t.Errorf("comparison lexed as %v %q", toks[1].kind, toks[1].text)
	}
	toks = lexKinds(t, `?x <= 5`)
	if toks[1].kind != tokPunct || toks[1].text != "<=" {
		t.Errorf("<= lexed as %v %q", toks[1].kind, toks[1].text)
	}
	toks = lexKinds(t, `<http://ex/a>`)
	if toks[0].kind != tokIRI || toks[0].text != "http://ex/a" {
		t.Errorf("IRI lexed as %v %q", toks[0].kind, toks[0].text)
	}
	// An unclosed angle with a space is the operator, so this is an
	// IRI comparison: ?x < ?y.
	toks = lexKinds(t, `?x < ?y`)
	if toks[1].kind != tokPunct {
		t.Errorf("spaced < lexed as %v", toks[1].kind)
	}
}

func TestLexVariables(t *testing.T) {
	toks := lexKinds(t, `?abc $def`)
	if toks[0].kind != tokVar || toks[0].text != "abc" {
		t.Errorf("?abc -> %v %q", toks[0].kind, toks[0].text)
	}
	if toks[1].kind != tokVar || toks[1].text != "def" {
		t.Errorf("$def -> %v %q", toks[1].kind, toks[1].text)
	}
	if _, err := lex(`? broken`); err == nil {
		t.Error("empty variable name accepted")
	}
}

func TestLexLiterals(t *testing.T) {
	toks := lexKinds(t, `"a\"b" 'c' "x"@en-US "5"^^<http://dt> "6"^^xsd:integer`)
	if toks[0].litVal != `a"b` {
		t.Errorf("escape: %q", toks[0].litVal)
	}
	if toks[1].litVal != "c" {
		t.Errorf("single-quoted: %q", toks[1].litVal)
	}
	if toks[2].litLang != "en-US" {
		t.Errorf("lang: %q", toks[2].litLang)
	}
	if toks[3].litDT != "http://dt" {
		t.Errorf("datatype: %q", toks[3].litDT)
	}
	if toks[4].litDT != "pname:xsd:integer" {
		t.Errorf("pname datatype: %q", toks[4].litDT)
	}
}

func TestLexNumbers(t *testing.T) {
	toks := lexKinds(t, `42 -7 3.14 +1`)
	for i, want := range []string{"42", "-7", "3.14", "+1"} {
		if toks[i].kind != tokNumber || toks[i].text != want {
			t.Errorf("token %d = %v %q, want number %q", i, toks[i].kind, toks[i].text, want)
		}
	}
	// "1." stops the number at the dot (dot is punctuation).
	toks = lexKinds(t, `1.`)
	if toks[0].text != "1" || toks[1].text != "." {
		t.Errorf("number before bare dot = %q %q", toks[0].text, toks[1].text)
	}
}

func TestLexKeywordsCaseInsensitive(t *testing.T) {
	toks := lexKinds(t, `select Select SELECT sElEcT`)
	for i := 0; i < 4; i++ {
		if toks[i].kind != tokKeyword || toks[i].text != "SELECT" {
			t.Errorf("token %d = %v %q", i, toks[i].kind, toks[i].text)
		}
	}
}

func TestLexPrefixedNames(t *testing.T) {
	toks := lexKinds(t, `ub:advisor rdf:type :bare`)
	if toks[0].kind != tokPName || toks[0].text != "ub:advisor" {
		t.Errorf("pname = %v %q", toks[0].kind, toks[0].text)
	}
	if toks[2].kind != tokPName || toks[2].text != ":bare" {
		t.Errorf("empty-prefix pname = %v %q", toks[2].kind, toks[2].text)
	}
}

func TestLexOperators(t *testing.T) {
	toks := lexKinds(t, `&& || != >= ! = { } ( ) . ; , * /`)
	wants := []string{"&&", "||", "!=", ">=", "!", "=", "{", "}", "(", ")", ".", ";", ",", "*", "/"}
	for i, want := range wants {
		if toks[i].kind != tokPunct || toks[i].text != want {
			t.Errorf("token %d = %q, want %q", i, toks[i].text, want)
		}
	}
}

func TestLexComments(t *testing.T) {
	toks := lexKinds(t, "SELECT # comment with { } \" tokens\n?x")
	if len(toks) != 3 { // SELECT, ?x, EOF
		t.Errorf("tokens = %d, want 3", len(toks))
	}
}

func TestLexErrors(t *testing.T) {
	for _, bad := range []string{
		`"unterminated`,
		`"bad\escape"`,
		`"x"@`,
		"\"x\"^^",
		`bareword`,
	} {
		if _, err := lex(bad); err == nil {
			t.Errorf("lex(%q) succeeded, want error", bad)
		}
	}
}

func TestLexPositions(t *testing.T) {
	toks := lexKinds(t, `SELECT ?x`)
	if toks[0].pos != 0 || toks[1].pos != 7 {
		t.Errorf("positions = %d %d", toks[0].pos, toks[1].pos)
	}
}
