package sparql

import (
	"reflect"
	"strings"
	"testing"

	"lusail/internal/rdf"
)

func TestParseBasicSelect(t *testing.T) {
	q, err := Parse(`SELECT ?s ?o WHERE { ?s <http://ex/p> ?o . }`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Form != SelectForm {
		t.Error("form not SELECT")
	}
	if !reflect.DeepEqual(q.Vars, []Var{"s", "o"}) {
		t.Errorf("vars = %v", q.Vars)
	}
	if len(q.Where.Patterns) != 1 {
		t.Fatalf("patterns = %d", len(q.Where.Patterns))
	}
	tp := q.Where.Patterns[0]
	if !tp.S.IsVar() || tp.S.Var != "s" {
		t.Errorf("subject = %v", tp.S)
	}
	if tp.P.IsVar() || tp.P.Term != rdf.IRI("http://ex/p") {
		t.Errorf("predicate = %v", tp.P)
	}
}

func TestParsePrefixes(t *testing.T) {
	q, err := Parse(`
PREFIX ub: <http://lubm.org/>
PREFIX rdf: <http://www.w3.org/1999/02/22-rdf-syntax-ns#>
SELECT ?x WHERE { ?x rdf:type ub:GraduateStudent . ?x ub:advisor ?p }`)
	if err != nil {
		t.Fatal(err)
	}
	if q.Where.Patterns[0].P.Term != rdf.IRI(rdf.RDFType) {
		t.Errorf("rdf:type not expanded: %v", q.Where.Patterns[0].P)
	}
	if q.Where.Patterns[0].O.Term != rdf.IRI("http://lubm.org/GraduateStudent") {
		t.Errorf("ub: not expanded: %v", q.Where.Patterns[0].O)
	}
}

func TestParseAKeyword(t *testing.T) {
	q := MustParse(`SELECT ?x WHERE { ?x a <http://ex/C> }`)
	if q.Where.Patterns[0].P.Term != rdf.IRI(rdf.RDFType) {
		t.Errorf("'a' not expanded to rdf:type")
	}
	if _, err := Parse(`SELECT ?x WHERE { a <http://ex/p> ?x }`); err == nil {
		t.Error("'a' accepted in subject position")
	}
}

func TestParsePredicateObjectLists(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?x <http://ex/p> ?a ; <http://ex/q> ?b , ?c . }`)
	if len(q.Where.Patterns) != 3 {
		t.Fatalf("patterns = %d, want 3", len(q.Where.Patterns))
	}
	for _, tp := range q.Where.Patterns {
		if !tp.S.IsVar() || tp.S.Var != "x" {
			t.Errorf("shared subject lost: %v", tp)
		}
	}
	if q.Where.Patterns[2].O.Var != "c" {
		t.Errorf("object list wrong: %v", q.Where.Patterns[2])
	}
}

func TestParseFilterExpressions(t *testing.T) {
	q := MustParse(`SELECT ?x WHERE {
		?x <http://ex/age> ?age .
		FILTER (?age >= 18 && ?age < 65 || ?x = <http://ex/boss>)
		FILTER regex(?name, "^smith", "i")
		FILTER (!BOUND(?y))
	}`)
	if len(q.Where.Filters) != 3 {
		t.Fatalf("filters = %d, want 3", len(q.Where.Filters))
	}
	or, ok := q.Where.Filters[0].(*BinaryExpr)
	if !ok || or.Op != "||" {
		t.Fatalf("top of filter 0 = %v, want ||", q.Where.Filters[0])
	}
	and, ok := or.Left.(*BinaryExpr)
	if !ok || and.Op != "&&" {
		t.Fatalf("precedence wrong: left of || is %v", or.Left)
	}
	call, ok := q.Where.Filters[1].(*CallExpr)
	if !ok || call.Func != "REGEX" || len(call.Args) != 3 {
		t.Fatalf("filter 1 = %v", q.Where.Filters[1])
	}
}

func TestParseFilterNotExists(t *testing.T) {
	// The shape of Lusail's check queries (Fig. 6 in the paper).
	q := MustParse(`SELECT ?P WHERE {
		?S <http://ex/advisor> ?P .
		FILTER NOT EXISTS { ?P <http://ex/teacherOf> ?C . }
	} LIMIT 1`)
	if q.Limit != 1 {
		t.Errorf("limit = %d", q.Limit)
	}
	ex, ok := q.Where.Filters[0].(*ExistsExpr)
	if !ok || !ex.Not {
		t.Fatalf("filter = %#v", q.Where.Filters[0])
	}
	if len(ex.Group.Patterns) != 1 {
		t.Errorf("group patterns = %d", len(ex.Group.Patterns))
	}
}

func TestParseFilterNotExistsSubSelect(t *testing.T) {
	// The paper's literal check-query form with an embedded SELECT.
	q := MustParse(`SELECT ?P WHERE {
		?S <http://ex/advisor> ?P .
		FILTER NOT EXISTS { SELECT ?P WHERE { ?P <http://ex/teacherOf> ?C . } }
	} LIMIT 1`)
	ex, ok := q.Where.Filters[0].(*ExistsExpr)
	if !ok || !ex.Not {
		t.Fatalf("filter = %#v", q.Where.Filters[0])
	}
	if len(ex.Group.Patterns) != 1 {
		t.Errorf("sub-select group not flattened: %d patterns", len(ex.Group.Patterns))
	}
}

func TestParseOptionalUnionValues(t *testing.T) {
	q := MustParse(`SELECT * WHERE {
		?s <http://ex/p> ?o .
		OPTIONAL { ?s <http://ex/label> ?l . FILTER (STRLEN(?l) > 2) }
		{ ?s <http://ex/a> ?x } UNION { ?s <http://ex/b> ?x } UNION { ?s <http://ex/c> ?x }
		VALUES ?s { <http://ex/1> <http://ex/2> }
		VALUES (?a ?b) { (<http://ex/3> "v") (UNDEF 4) }
	}`)
	if len(q.Where.Optionals) != 1 {
		t.Fatalf("optionals = %d", len(q.Where.Optionals))
	}
	if len(q.Where.Optionals[0].Filters) != 1 {
		t.Error("optional filter lost")
	}
	if len(q.Where.Unions) != 1 || len(q.Where.Unions[0].Alternatives) != 3 {
		t.Fatalf("unions = %+v", q.Where.Unions)
	}
	if len(q.Where.Values) != 2 {
		t.Fatalf("values = %d", len(q.Where.Values))
	}
	vb := q.Where.Values[1]
	if !reflect.DeepEqual(vb.Vars, []Var{"a", "b"}) {
		t.Errorf("values vars = %v", vb.Vars)
	}
	if !vb.Rows[1][0].IsZero() {
		t.Error("UNDEF not parsed as zero term")
	}
	if vb.Rows[1][1] != rdf.TypedLiteral("4", rdf.XSDInteger) {
		t.Errorf("numeric values term = %v", vb.Rows[1][1])
	}
}

func TestParseCount(t *testing.T) {
	q := MustParse(`SELECT (COUNT(*) AS ?c) WHERE { ?s ?p ?o }`)
	if !q.Count || q.CountVar != "c" || q.CountArg != "" {
		t.Errorf("count = %v %v %v", q.Count, q.CountVar, q.CountArg)
	}
	q2 := MustParse(`SELECT (COUNT(DISTINCT ?s) AS ?n) WHERE { ?s ?p ?o }`)
	if !q2.Count || !q2.CountDistinct || q2.CountArg != "s" {
		t.Errorf("count distinct parse wrong: %+v", q2)
	}
}

func TestParseAsk(t *testing.T) {
	q := MustParse(`ASK { ?s <http://ex/p> "v"@en }`)
	if q.Form != AskForm {
		t.Error("form != ASK")
	}
	if q.Where.Patterns[0].O.Term != rdf.LangLiteral("v", "en") {
		t.Errorf("object = %v", q.Where.Patterns[0].O)
	}
}

func TestParseModifiers(t *testing.T) {
	q := MustParse(`SELECT DISTINCT ?s WHERE { ?s ?p ?o } ORDER BY DESC(?s) ?p LIMIT 10 OFFSET 5`)
	if !q.Distinct || q.Limit != 10 || q.Offset != 5 {
		t.Errorf("modifiers: %+v", q)
	}
	if len(q.OrderBy) != 2 || !q.OrderBy[0].Desc || q.OrderBy[1].Var != "p" {
		t.Errorf("order by = %+v", q.OrderBy)
	}
}

func TestParseLiteralForms(t *testing.T) {
	q := MustParse(`PREFIX xsd: <http://www.w3.org/2001/XMLSchema#>
SELECT * WHERE {
	?s <http://ex/a> "plain" .
	?s <http://ex/b> "typed"^^xsd:integer .
	?s <http://ex/c> "iri-typed"^^<http://ex/dt> .
	?s <http://ex/d> 'single' .
	?s <http://ex/e> 3.14 .
	?s <http://ex/f> -7 .
	?s <http://ex/g> true .
}`)
	pats := q.Where.Patterns
	want := []rdf.Term{
		rdf.Literal("plain"),
		rdf.TypedLiteral("typed", rdf.XSDInteger),
		rdf.TypedLiteral("iri-typed", "http://ex/dt"),
		rdf.Literal("single"),
		rdf.TypedLiteral("3.14", rdf.XSDDecimal),
		rdf.TypedLiteral("-7", rdf.XSDInteger),
		rdf.Bool(true),
	}
	for i, w := range want {
		if pats[i].O.Term != w {
			t.Errorf("pattern %d object = %v, want %v", i, pats[i].O.Term, w)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELECT WHERE { ?s ?p ?o }`,
		`SELECT ?s { ?s ?p }`,                       // incomplete triple
		`SELECT ?s WHERE { ?s ub:x ?o }`,            // undeclared prefix
		`SELECT ?s WHERE { ?s ?p ?o `,               // unclosed group
		`SELECT ?s WHERE { ?s ?p ?o } LIMIT x`,      // bad limit
		`SELECT ?s WHERE { FILTER () }`,             // empty filter
		`SELECT (COUNT(*) AS c) WHERE { ?s ?p ?o }`, // AS needs variable
		`CONSTRUCT { ?s ?p ?o } WHERE { ?s ?p ?o }`, // unsupported form
		`SELECT ?s WHERE { ?s ?p ?o } ORDER BY`,     // empty order by
		`SELECT ?s WHERE { VALUES { <a> } }`,        // VALUES needs var
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", s)
		}
	}
}

func TestParseComments(t *testing.T) {
	q := MustParse(`# leading comment
SELECT ?s # trailing
WHERE { ?s ?p ?o } # end`)
	if len(q.Where.Patterns) != 1 {
		t.Error("comment handling broke parse")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	queries := []string{
		`SELECT ?s ?o WHERE { ?s <http://ex/p> ?o . }`,
		`ASK { ?s <http://ex/p> <http://ex/o> . }`,
		`SELECT DISTINCT * WHERE { ?s ?p ?o . FILTER (?o > 5) } ORDER BY ?s LIMIT 3 OFFSET 1`,
		`SELECT (COUNT(*) AS ?c) WHERE { ?s <http://ex/p> ?o . }`,
		`SELECT ?s WHERE { { ?s <http://ex/a> ?x } UNION { ?s <http://ex/b> ?x } }`,
		`SELECT ?s WHERE { ?s <http://ex/p> ?o . OPTIONAL { ?o <http://ex/q> ?z } }`,
		`SELECT ?s WHERE { ?s <http://ex/p> ?o . FILTER NOT EXISTS { ?o <http://ex/q> ?z } } LIMIT 1`,
		`SELECT ?s WHERE { VALUES (?s ?o) { (<http://ex/1> "a") (UNDEF "b"@en) } ?s <http://ex/p> ?o }`,
		`SELECT ?s WHERE { ?s <http://ex/p> ?o . FILTER (STRSTARTS(STR(?o), "http")) }`,
	}
	for _, src := range queries {
		q1, err := Parse(src)
		if err != nil {
			t.Errorf("parse %q: %v", src, err)
			continue
		}
		text := q1.String()
		q2, err := Parse(text)
		if err != nil {
			t.Errorf("reparse of serialization failed.\nsrc: %s\nout: %s\nerr: %v", src, text, err)
			continue
		}
		q1.Prefixes, q2.Prefixes = nil, nil
		if !reflect.DeepEqual(q1, q2) {
			t.Errorf("round trip mismatch for %q:\nserialized: %s\n q1=%#v\n q2=%#v", src, text, q1, q2)
		}
	}
}

func TestCloneIsDeep(t *testing.T) {
	q := MustParse(`SELECT ?s WHERE { ?s <http://ex/p> ?o . OPTIONAL { ?o <http://ex/q> ?z } FILTER (?o > 1) }`)
	cp := q.Clone()
	cp.Where.Patterns[0].S = C(rdf.IRI("http://ex/mutated"))
	cp.Where.Optionals[0].Patterns[0].O = V("w")
	if q.Where.Patterns[0].S.Var != "s" {
		t.Error("clone shares pattern storage")
	}
	if q.Where.Optionals[0].Patterns[0].O.Var != "z" {
		t.Error("clone shares optional storage")
	}
}

func TestProjectedVars(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?s ?p ?o . OPTIONAL { ?o <http://ex/q> ?z } }`)
	got := q.ProjectedVars()
	want := []Var{"s", "p", "o", "z"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("ProjectedVars = %v, want %v", got, want)
	}
}

func TestBindingOps(t *testing.T) {
	b1 := Binding{"x": rdf.IRI("a"), "y": rdf.IRI("b")}
	b2 := Binding{"y": rdf.IRI("b"), "z": rdf.IRI("c")}
	b3 := Binding{"y": rdf.IRI("DIFFERENT")}
	if !b1.Compatible(b2) {
		t.Error("compatible bindings reported incompatible")
	}
	if b1.Compatible(b3) {
		t.Error("incompatible bindings reported compatible")
	}
	m := b1.Merge(b2)
	if len(m) != 3 || m["z"] != rdf.IRI("c") {
		t.Errorf("merge = %v", m)
	}
	if b1.Key([]Var{"x", "missing"}) == b1.Key([]Var{"x", "y"}) {
		t.Error("keys should differ")
	}
	c := b1.Clone()
	c["x"] = rdf.IRI("other")
	if b1["x"] != rdf.IRI("a") {
		t.Error("clone aliases map")
	}
}

func TestVarsHelpers(t *testing.T) {
	tp := TriplePattern{S: V("x"), P: V("x"), O: V("y")}
	if got := tp.Vars(); !reflect.DeepEqual(got, []Var{"x", "y"}) {
		t.Errorf("Vars = %v", got)
	}
	if !tp.HasVar("y") || tp.HasVar("z") {
		t.Error("HasVar wrong")
	}
	q := MustParse(`SELECT * WHERE { ?a <http://ex/p> ?b . FILTER (?c > 1) OPTIONAL { ?b <http://ex/q> ?d } VALUES ?e { 1 } }`)
	got := q.Where.AllVars()
	if !reflect.DeepEqual(got, []Var{"a", "b", "c", "d", "e"}) {
		t.Errorf("AllVars = %v", got)
	}
}

func TestSerializedContainsNoPrefixes(t *testing.T) {
	q := MustParse(`PREFIX ub: <http://lubm.org/> SELECT ?x WHERE { ?x ub:advisor ?p }`)
	s := q.String()
	if strings.Contains(s, "ub:") || !strings.Contains(s, "<http://lubm.org/advisor>") {
		t.Errorf("serialization should expand prefixes: %s", s)
	}
}
