// Package sparql implements the SPARQL fragment used by Lusail and its
// baselines: SELECT / ASK queries over basic graph patterns with
// FILTER (including EXISTS / NOT EXISTS), OPTIONAL, UNION, VALUES,
// DISTINCT, ORDER BY, LIMIT/OFFSET, and COUNT aggregation. The package
// provides the AST, a lexer/parser, and a serializer so that federated
// engines can decompose a parsed query and ship subqueries to
// endpoints as SPARQL text.
package sparql

import (
	"lusail/internal/rdf"
)

// Var is a SPARQL variable name without the leading '?'.
type Var string

// Elem is one position of a triple pattern: either a variable or a
// constant RDF term.
type Elem struct {
	Var  Var      // set when IsVar
	Term rdf.Term // set when !IsVar
}

// IsVar reports whether the element is a variable.
func (e Elem) IsVar() bool { return e.Var != "" }

// V makes a variable element.
func V(name string) Elem { return Elem{Var: Var(name)} }

// C makes a constant element.
func C(t rdf.Term) Elem { return Elem{Term: t} }

// String renders the element in SPARQL syntax.
func (e Elem) String() string {
	if e.IsVar() {
		return "?" + string(e.Var)
	}
	return e.Term.String()
}

// TriplePattern is one pattern in a basic graph pattern.
type TriplePattern struct {
	S, P, O Elem
}

// String renders the pattern in SPARQL syntax (no trailing dot).
func (tp TriplePattern) String() string {
	return tp.S.String() + " " + tp.P.String() + " " + tp.O.String()
}

// Vars returns the variables of the pattern in S,P,O order without
// duplicates.
func (tp TriplePattern) Vars() []Var {
	var out []Var
	seen := map[Var]bool{}
	for _, e := range []Elem{tp.S, tp.P, tp.O} {
		if e.IsVar() && !seen[e.Var] {
			seen[e.Var] = true
			out = append(out, e.Var)
		}
	}
	return out
}

// HasVar reports whether v occurs in the pattern.
func (tp TriplePattern) HasVar(v Var) bool {
	return (tp.S.IsVar() && tp.S.Var == v) ||
		(tp.P.IsVar() && tp.P.Var == v) ||
		(tp.O.IsVar() && tp.O.Var == v)
}

// Form is the query form.
type Form uint8

const (
	// SelectForm is a SELECT query.
	SelectForm Form = iota
	// AskForm is an ASK query.
	AskForm
)

// OrderKey is one ORDER BY criterion.
type OrderKey struct {
	Var  Var
	Desc bool
}

// ValuesBlock is an inline VALUES data block. Each row gives one term
// per variable; a zero Term means UNDEF.
type ValuesBlock struct {
	Vars []Var
	Rows [][]rdf.Term
}

// UnionBlock is a UNION of alternative group patterns.
type UnionBlock struct {
	Alternatives []*GroupGraphPattern
}

// GroupGraphPattern is a SPARQL group: a basic graph pattern plus
// filters, optional groups, unions, and values blocks. Evaluation
// semantics: join(BGP, unions..., values...), then left-join each
// optional in order, then apply filters.
type GroupGraphPattern struct {
	Patterns  []TriplePattern
	Filters   []Expr
	Optionals []*GroupGraphPattern
	Unions    []*UnionBlock
	Values    []*ValuesBlock
}

// IsEmpty reports whether the group has no content.
func (g *GroupGraphPattern) IsEmpty() bool {
	return g == nil || (len(g.Patterns) == 0 && len(g.Filters) == 0 &&
		len(g.Optionals) == 0 && len(g.Unions) == 0 && len(g.Values) == 0)
}

// AllVars returns every variable mentioned anywhere in the group,
// in first-appearance order.
func (g *GroupGraphPattern) AllVars() []Var {
	var out []Var
	seen := map[Var]bool{}
	add := func(v Var) {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	g.walkVars(add)
	return out
}

func (g *GroupGraphPattern) walkVars(add func(Var)) {
	if g == nil {
		return
	}
	for _, tp := range g.Patterns {
		for _, v := range tp.Vars() {
			add(v)
		}
	}
	for _, f := range g.Filters {
		for _, v := range f.Vars() {
			add(v)
		}
	}
	for _, u := range g.Unions {
		for _, alt := range u.Alternatives {
			alt.walkVars(add)
		}
	}
	for _, o := range g.Optionals {
		o.walkVars(add)
	}
	for _, vb := range g.Values {
		for _, v := range vb.Vars {
			add(v)
		}
	}
}

// Query is a parsed SPARQL query.
type Query struct {
	Form     Form
	Distinct bool
	// Vars is the projection list; empty means SELECT *.
	Vars []Var
	// Count, when true, makes the query SELECT (COUNT(*) AS ?CountVar)
	// (or COUNT(DISTINCT ?CountArg) when CountArg is set).
	Count         bool
	CountVar      Var
	CountArg      Var // variable inside COUNT(...); empty means *
	CountDistinct bool
	Where         *GroupGraphPattern
	OrderBy       []OrderKey
	Limit         int // -1 means no limit
	Offset        int
	Prefixes      map[string]string
}

// NewSelect returns an empty SELECT * query with no limit.
func NewSelect() *Query {
	return &Query{Form: SelectForm, Limit: -1, Where: &GroupGraphPattern{}}
}

// NewAsk returns an empty ASK query.
func NewAsk() *Query {
	return &Query{Form: AskForm, Limit: -1, Where: &GroupGraphPattern{}}
}

// ProjectedVars returns the effective projection: Vars if non-empty,
// otherwise all variables of the WHERE clause.
func (q *Query) ProjectedVars() []Var {
	if q.Count {
		return []Var{q.CountVar}
	}
	if len(q.Vars) > 0 {
		return q.Vars
	}
	return q.Where.AllVars()
}

// Clone returns a deep copy of the query.
func (q *Query) Clone() *Query {
	cp := *q
	cp.Vars = append([]Var(nil), q.Vars...)
	cp.OrderBy = append([]OrderKey(nil), q.OrderBy...)
	if q.Prefixes != nil {
		cp.Prefixes = make(map[string]string, len(q.Prefixes))
		for k, v := range q.Prefixes {
			cp.Prefixes[k] = v
		}
	}
	cp.Where = q.Where.Clone()
	return &cp
}

// Clone returns a deep copy of the group.
func (g *GroupGraphPattern) Clone() *GroupGraphPattern {
	if g == nil {
		return nil
	}
	cp := &GroupGraphPattern{
		Patterns: append([]TriplePattern(nil), g.Patterns...),
		Filters:  append([]Expr(nil), g.Filters...),
	}
	for _, o := range g.Optionals {
		cp.Optionals = append(cp.Optionals, o.Clone())
	}
	for _, u := range g.Unions {
		nu := &UnionBlock{}
		for _, alt := range u.Alternatives {
			nu.Alternatives = append(nu.Alternatives, alt.Clone())
		}
		cp.Unions = append(cp.Unions, nu)
	}
	for _, vb := range g.Values {
		nvb := &ValuesBlock{Vars: append([]Var(nil), vb.Vars...)}
		for _, row := range vb.Rows {
			nvb.Rows = append(nvb.Rows, append([]rdf.Term(nil), row...))
		}
		cp.Values = append(cp.Values, nvb)
	}
	return cp
}

// Binding maps variables to terms; it is one solution row.
type Binding map[Var]rdf.Term

// Clone copies the binding.
func (b Binding) Clone() Binding {
	nb := make(Binding, len(b))
	for k, v := range b {
		nb[k] = v
	}
	return nb
}

// Compatible reports whether two bindings agree on all shared
// variables (the SPARQL join compatibility condition).
func (b Binding) Compatible(o Binding) bool {
	if len(o) < len(b) {
		b, o = o, b
	}
	for k, v := range b {
		if ov, ok := o[k]; ok && ov != v {
			return false
		}
	}
	return true
}

// Merge returns b extended with o's bindings. The caller must have
// checked compatibility.
func (b Binding) Merge(o Binding) Binding {
	nb := make(Binding, len(b)+len(o))
	for k, v := range b {
		nb[k] = v
	}
	for k, v := range o {
		nb[k] = v
	}
	return nb
}

// Key renders the values of vars (in order) as a single string usable
// as a hash-join key. Unbound variables contribute "UNDEF".
func (b Binding) Key(vars []Var) string {
	buf := GetKeyBuf()
	*buf = b.AppendKey((*buf)[:0], vars)
	k := string(*buf)
	PutKeyBuf(buf)
	return k
}

// AppendKey appends the join key of b over vars to buf and returns the
// extended slice. Hot paths call it with a pooled scratch buffer and
// probe hash tables via idx[string(buf)], which the compiler compiles
// to an allocation-free lookup — rendering a key then costs no
// allocations at all.
func (b Binding) AppendKey(buf []byte, vars []Var) []byte {
	for _, v := range vars {
		if t, ok := b[v]; ok {
			buf = t.AppendTo(buf)
		} else {
			buf = append(buf, "UNDEF"...)
		}
		buf = append(buf, '\x00')
	}
	return buf
}
