package sparql

import (
	"encoding/xml"
	"fmt"
	"io"

	"lusail/internal/rdf"
)

// The SPARQL Query Results XML Format
// (https://www.w3.org/TR/rdf-sparql-XMLres/), the second standard wire
// format next to JSON; real-world endpoints negotiate between the two.

type xmlSparql struct {
	XMLName xml.Name    `xml:"http://www.w3.org/2005/sparql-results# sparql"`
	Head    xmlHead     `xml:"head"`
	Boolean *bool       `xml:"boolean,omitempty"`
	Results *xmlResults `xml:"results,omitempty"`
}

type xmlHead struct {
	Variables []xmlVariable `xml:"variable"`
}

type xmlVariable struct {
	Name string `xml:"name,attr"`
}

type xmlResults struct {
	Results []xmlResult `xml:"result"`
}

type xmlResult struct {
	Bindings []xmlBinding `xml:"binding"`
}

type xmlBinding struct {
	Name    string      `xml:"name,attr"`
	URI     *string     `xml:"uri,omitempty"`
	BNode   *string     `xml:"bnode,omitempty"`
	Literal *xmlLiteral `xml:"literal,omitempty"`
}

type xmlLiteral struct {
	Datatype string `xml:"datatype,attr,omitempty"`
	Lang     string `xml:"http://www.w3.org/XML/1998/namespace lang,attr,omitempty"`
	Value    string `xml:",chardata"`
}

// EncodeXML writes r in the SPARQL Query Results XML Format.
func (r *Results) EncodeXML(w io.Writer) error {
	doc := xmlSparql{}
	if r.AskForm {
		b := r.Ask
		doc.Boolean = &b
	} else {
		for _, v := range r.Vars {
			doc.Head.Variables = append(doc.Head.Variables, xmlVariable{Name: string(v)})
		}
		doc.Results = &xmlResults{}
		for _, row := range r.Rows {
			var res xmlResult
			// Emit bindings in header order for determinism.
			for _, v := range r.Vars {
				t, ok := row[v]
				if !ok {
					continue
				}
				res.Bindings = append(res.Bindings, termToXML(string(v), t))
			}
			// Variables outside the header (SELECT * edge cases).
			for v, t := range row {
				if !containsVar(r.Vars, v) {
					res.Bindings = append(res.Bindings, termToXML(string(v), t))
				}
			}
			doc.Results.Results = append(doc.Results.Results, res)
		}
	}
	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	if err := enc.Encode(doc); err != nil {
		return err
	}
	_, err := io.WriteString(w, "\n")
	return err
}

func containsVar(vars []Var, v Var) bool {
	for _, x := range vars {
		if x == v {
			return true
		}
	}
	return false
}

func termToXML(name string, t rdf.Term) xmlBinding {
	b := xmlBinding{Name: name}
	switch t.Kind {
	case rdf.KindIRI:
		v := t.Value
		b.URI = &v
	case rdf.KindBlank:
		v := t.Value
		b.BNode = &v
	default:
		b.Literal = &xmlLiteral{Value: t.Value, Datatype: t.Datatype, Lang: t.Lang}
	}
	return b
}

// DecodeXML reads the SPARQL Query Results XML Format.
func DecodeXML(r io.Reader) (*Results, error) {
	var doc xmlSparql
	if err := xml.NewDecoder(r).Decode(&doc); err != nil {
		return nil, fmt.Errorf("sparql: decoding XML results: %w", err)
	}
	if doc.Boolean != nil {
		return NewAskResult(*doc.Boolean), nil
	}
	out := &Results{}
	for _, v := range doc.Head.Variables {
		out.Vars = append(out.Vars, Var(v.Name))
	}
	if doc.Results == nil {
		return out, nil
	}
	for _, res := range doc.Results.Results {
		row := Binding{}
		for _, b := range res.Bindings {
			t, err := termFromXML(b)
			if err != nil {
				return nil, err
			}
			row[Var(b.Name)] = t
		}
		out.Rows = append(out.Rows, row)
	}
	return out, nil
}

func termFromXML(b xmlBinding) (rdf.Term, error) {
	switch {
	case b.URI != nil:
		return rdf.IRI(*b.URI), nil
	case b.BNode != nil:
		return rdf.Blank(*b.BNode), nil
	case b.Literal != nil:
		switch {
		case b.Literal.Lang != "":
			return rdf.LangLiteral(b.Literal.Value, b.Literal.Lang), nil
		case b.Literal.Datatype != "":
			return rdf.TypedLiteral(b.Literal.Value, b.Literal.Datatype), nil
		default:
			return rdf.Literal(b.Literal.Value), nil
		}
	default:
		return rdf.Term{}, fmt.Errorf("sparql: XML binding %q has no term", b.Name)
	}
}
