package sparql

import "sync"

// Join-key scratch buffers. Rendering a hash-join key walks every term
// of a row; doing that through strings.Builder allocates per call,
// which on a 100k-row probe side is 100k short-lived garbage objects.
// The pool hands out reusable byte slices instead: render into the
// buffer, look up (or copy once for map inserts), put it back.
var keyBufPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 128)
		return &b
	},
}

// GetKeyBuf returns a scratch buffer for AppendKey. Callers must
// return it with PutKeyBuf and must not retain views into it.
func GetKeyBuf() *[]byte { return keyBufPool.Get().(*[]byte) }

// PutKeyBuf returns a scratch buffer to the pool.
func PutKeyBuf(b *[]byte) {
	// Don't cache pathologically large buffers: one wide row would pin
	// its arena forever.
	if cap(*b) > 1<<16 {
		return
	}
	keyBufPool.Put(b)
}

// KeyColumn renders the join key of every row exactly once, returning
// one key string per row. Building the column up front replaces the
// per-comparator / per-probe Key calls that used to re-render the same
// row O(log n) or O(matches) times. All keys share a single backing
// arena, so the column costs one large allocation plus the string
// headers instead of one allocation per row.
func KeyColumn(rows []Binding, vars []Var) []string {
	if len(rows) == 0 {
		return nil
	}
	// Render everything into one arena, remembering the end offset of
	// each row's key.
	arena := make([]byte, 0, len(rows)*32)
	ends := make([]int, len(rows))
	for i, row := range rows {
		arena = row.AppendKey(arena, vars)
		ends[i] = len(arena)
	}
	// One copy of the arena into an immutable string, then slice the
	// per-row keys out of it for free.
	all := string(arena)
	keys := make([]string, len(rows))
	start := 0
	for i, end := range ends {
		keys[i] = all[start:end]
		start = end
	}
	return keys
}
