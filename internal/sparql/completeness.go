package sparql

import (
	"fmt"
	"strings"
)

// Dropped records one contribution a degraded execution gave up on:
// an endpoint (or a whole subquery) whose answers are missing from the
// result, in which pipeline phase it was lost, and why.
type Dropped struct {
	// Endpoint names the endpoint whose contribution was dropped.
	// Empty when a whole subquery was skipped regardless of endpoint
	// (e.g. the query budget expired before it ran).
	Endpoint string `json:"endpoint,omitempty"`
	// Subquery identifies the affected subquery ("sq3") when the drop
	// is scoped to one; empty for whole-endpoint drops during source
	// selection or analysis.
	Subquery string `json:"subquery,omitempty"`
	// Phase is the pipeline phase the drop happened in:
	// "source-selection", "gjv-checks", "count-estimation", "phase1",
	// or "phase2".
	Phase string `json:"phase"`
	// Reason is a short human-readable cause ("circuit breaker open",
	// "query budget exceeded", "HTTP 413", ...).
	Reason string `json:"reason"`
}

// String renders one drop, e.g. "univ2@phase1: circuit breaker open".
func (d Dropped) String() string {
	who := d.Endpoint
	if d.Subquery != "" {
		if who != "" {
			who += "/"
		}
		who += d.Subquery
	}
	if who == "" {
		who = "*"
	}
	return fmt.Sprintf("%s@%s: %s", who, d.Phase, d.Reason)
}

// Completeness annotates a result set produced under a degradation
// policy: whether every endpoint contributed fully, and which
// contributions were dropped when not. A nil *Completeness (or one
// with Complete=true) means the result is exact.
type Completeness struct {
	// Complete is true when no contribution was dropped.
	Complete bool `json:"complete"`
	// Dropped lists the contributions the execution gave up on, in the
	// order they were recorded.
	Dropped []Dropped `json:"dropped,omitempty"`
}

// DroppedEndpoints returns the distinct endpoint names with at least
// one drop, in first-seen order.
func (c *Completeness) DroppedEndpoints() []string {
	if c == nil {
		return nil
	}
	seen := map[string]bool{}
	var out []string
	for _, d := range c.Dropped {
		if d.Endpoint == "" || seen[d.Endpoint] {
			continue
		}
		seen[d.Endpoint] = true
		out = append(out, d.Endpoint)
	}
	return out
}

// String renders the report for logs and EXPLAIN ANALYZE output.
func (c *Completeness) String() string {
	if c == nil || c.Complete {
		return "complete"
	}
	parts := make([]string, len(c.Dropped))
	for i, d := range c.Dropped {
		parts[i] = d.String()
	}
	return "partial: " + strings.Join(parts, "; ")
}
