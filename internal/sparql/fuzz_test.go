package sparql

import (
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzParse drives the SPARQL parser with mutated inputs. The
// invariants are crash-freedom plus a round-trip property: Parse must
// never panic, and when it accepts an input, serializing the query
// (String) must not panic and must re-parse to an equally serialized
// query — the serialized form is a fixpoint.
func FuzzParse(f *testing.F) {
	seeds := []string{
		// Shapes from the paper's running examples and LUBM workload.
		`SELECT ?s WHERE { ?s <http://ex/p> ?o }`,
		`SELECT ?S ?P ?U ?A WHERE {
			?S <http://ex/advisor> ?P .
			?S <http://ex/takesCourse> ?C .
			?P <http://ex/teacherOf> ?C .
			?P <http://ex/PhDDegreeFrom> ?U .
			?U <http://ex/address> ?A .
		}`,
		`SELECT DISTINCT ?x WHERE { ?x a <http://ex/GraduateStudent> } ORDER BY ?x LIMIT 10 OFFSET 2`,
		`ASK { ?s ?p ?o }`,
		`SELECT (COUNT(*) AS ?c) WHERE { ?s ?p ?o }`,
		`SELECT * WHERE { ?s ?p ?o . FILTER (?o > 3 && ?o != 7) }`,
		`SELECT ?s WHERE { ?s ?p ?o . FILTER NOT EXISTS { ?s <http://ex/q> ?z } }`,
		`SELECT ?s WHERE { VALUES ?s { <http://ex/a> <http://ex/b> } ?s ?p ?o }`,
		`SELECT ?s WHERE { ?s ?p "lit with \" escape" }`,
		`SELECT ?s WHERE { ?s ?p "typed"^^<http://www.w3.org/2001/XMLSchema#string> }`,
		`SELECT ?s WHERE { ?s ?p "tagged"@en }`,
		`PREFIX ex: <http://ex/> SELECT ?s WHERE { ?s ex:p ex:o }`,
		// Degenerate and hostile shapes.
		``,
		`SELECT`,
		`SELECT ?s WHERE {`,
		`SELECT ?s WHERE { ?s ?p ?o `,
		`SELECT ?s WHERE { ?s ?p ?o } LIMIT -1`,
		`SELECT ?s WHERE { ?s ?p "unterminated }`,
		`SELECT ?s WHERE { ?s <no-close ?o }`,
		"SELECT ?s WHERE { ?s ?p \x00 }",
		strings.Repeat("{", 50),
		`SELECT ?s WHERE { ?s ?p ?o . FILTER (((((?o)))))`,
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		q, err := Parse(input)
		if err != nil {
			return
		}
		if q == nil {
			t.Fatalf("Parse(%q) returned nil query with nil error", input)
		}
		s1 := q.String()
		if !utf8.ValidString(input) {
			// A query that survived parsing with broken UTF-8 embedded in
			// a literal may serialize to broken UTF-8 too; the fixpoint
			// property below only holds for valid text.
			return
		}
		q2, err := Parse(s1)
		if err != nil {
			t.Fatalf("serialized form does not re-parse:\ninput: %q\nserialized: %q\nerr: %v", input, s1, err)
		}
		if s2 := q2.String(); s2 != s1 {
			t.Fatalf("serialization is not a fixpoint:\ninput: %q\nfirst: %q\nsecond: %q", input, s1, s2)
		}
	})
}
