package sparql

import (
	"encoding/json"
	"io"
)

// JSONRowEncoder writes the SPARQL 1.1 Query Results JSON Format
// incrementally: the head and the opening of the bindings array go out
// with the first rows, each subsequent chunk appends serialized
// bindings, and Close writes the closing brackets. It produces the
// same document EncodeJSON does, just without holding the full result —
// the server's chunked-transfer streaming path pairs one Rows call
// with one flush so clients see solutions while the query still runs.
type JSONRowEncoder struct {
	w       io.Writer
	started bool
	first   bool
	err     error
}

// NewJSONRowEncoder builds an encoder writing to w.
func NewJSONRowEncoder(w io.Writer) *JSONRowEncoder {
	return &JSONRowEncoder{w: w, first: true}
}

// Head writes the document prefix up to the opening of the bindings
// array. Calling it explicitly is optional — Rows writes it on first
// use — but lets a server emit a valid (eventually-empty) document
// before the first chunk arrives.
func (e *JSONRowEncoder) Head(vars []Var) error {
	if e.err != nil || e.started {
		return e.err
	}
	e.started = true
	names := make([]string, len(vars))
	for i, v := range vars {
		names[i] = string(v)
	}
	head, err := json.Marshal(jsonHead{Vars: names})
	if err != nil {
		e.err = err
		return err
	}
	_, e.err = io.WriteString(e.w, `{"head":`+string(head)+`,"results":{"bindings":[`)
	return e.err
}

// Rows appends one chunk of solutions (writing the head first if
// needed).
func (e *JSONRowEncoder) Rows(vars []Var, rows []Binding) error {
	if e.err != nil {
		return e.err
	}
	if !e.started {
		if err := e.Head(vars); err != nil {
			return err
		}
	}
	for _, row := range rows {
		m := make(map[string]jsonTerm, len(row))
		for v, t := range row {
			m[string(v)] = termToJSON(t)
		}
		b, err := json.Marshal(m)
		if err != nil {
			e.err = err
			return err
		}
		if !e.first {
			if _, e.err = io.WriteString(e.w, ","); e.err != nil {
				return e.err
			}
		}
		e.first = false
		if _, e.err = e.w.Write(b); e.err != nil {
			return e.err
		}
	}
	return nil
}

// Close terminates the document. vars is used to emit a valid empty
// document when no chunk ever arrived.
func (e *JSONRowEncoder) Close(vars []Var) error {
	if e.err != nil {
		return e.err
	}
	if !e.started {
		if err := e.Head(vars); err != nil {
			return err
		}
	}
	_, e.err = io.WriteString(e.w, "]}}\n")
	return e.err
}

// Started reports whether any bytes have been written; a server uses
// it to decide between a clean HTTP error and an in-band trailer.
func (e *JSONRowEncoder) Started() bool { return e.started }
