package sparql

import (
	"fmt"
	"strings"

	"lusail/internal/rdf"
)

// Parse parses a SPARQL query in the supported fragment.
func Parse(input string) (*Query, error) {
	toks, err := lex(input)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, prefixes: map[string]string{}}
	q, err := p.query()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("unexpected trailing input %q", p.cur().text)
	}
	return q, nil
}

// MustParse parses or panics; intended for tests and embedded
// benchmark query constants.
func MustParse(input string) *Query {
	q, err := Parse(input)
	if err != nil {
		panic(fmt.Sprintf("sparql.MustParse(%q): %v", input, err))
	}
	return q
}

type parser struct {
	toks     []token
	pos      int
	prefixes map[string]string
}

func (p *parser) cur() token { return p.toks[p.pos] }
func (p *parser) peek() token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return token{kind: tokEOF}
}
func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sparql: parse error near offset %d: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) expectPunct(s string) error {
	if p.cur().kind == tokPunct && p.cur().text == s {
		p.advance()
		return nil
	}
	return p.errf("expected %q, found %q", s, p.cur().text)
}

func (p *parser) isKeyword(kw string) bool {
	return p.cur().kind == tokKeyword && p.cur().text == kw
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.isKeyword(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) query() (*Query, error) {
	for p.isKeyword("PREFIX") || p.isKeyword("BASE") {
		if p.acceptKeyword("BASE") {
			if p.cur().kind != tokIRI {
				return nil, p.errf("BASE requires an IRI")
			}
			p.advance()
			continue
		}
		p.advance()
		if p.cur().kind != tokPName {
			return nil, p.errf("PREFIX requires a prefixed name declaration")
		}
		pn := p.advance().text
		name := strings.TrimSuffix(pn, ":")
		if i := strings.IndexByte(pn, ':'); i >= 0 {
			name = pn[:i]
		}
		if p.cur().kind != tokIRI {
			return nil, p.errf("PREFIX %s: requires an IRI", name)
		}
		p.prefixes[name] = p.advance().text
	}

	switch {
	case p.isKeyword("SELECT"):
		return p.selectQuery()
	case p.isKeyword("ASK"):
		p.advance()
		q := NewAsk()
		q.Prefixes = p.prefixes
		g, err := p.whereClause()
		if err != nil {
			return nil, err
		}
		q.Where = g
		return q, nil
	default:
		return nil, p.errf("expected SELECT or ASK, found %q", p.cur().text)
	}
}

func (p *parser) selectQuery() (*Query, error) {
	p.advance() // SELECT
	q := NewSelect()
	q.Prefixes = p.prefixes
	if p.acceptKeyword("DISTINCT") {
		q.Distinct = true
	}
	switch {
	case p.cur().kind == tokPunct && p.cur().text == "*":
		p.advance()
	case p.cur().kind == tokPunct && p.cur().text == "(":
		// (COUNT(*) AS ?c) or (COUNT(DISTINCT ?x) AS ?c)
		p.advance()
		if !p.acceptKeyword("COUNT") {
			return nil, p.errf("only COUNT is supported in projection expressions")
		}
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		q.Count = true
		if p.cur().kind == tokPunct && p.cur().text == "*" {
			p.advance()
		} else {
			if p.acceptKeyword("DISTINCT") {
				q.CountDistinct = true
			}
			if p.cur().kind != tokVar {
				return nil, p.errf("COUNT requires * or a variable")
			}
			q.CountArg = Var(p.advance().text)
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		if !p.acceptKeyword("AS") {
			return nil, p.errf("COUNT projection requires AS ?var")
		}
		if p.cur().kind != tokVar {
			return nil, p.errf("AS requires a variable")
		}
		q.CountVar = Var(p.advance().text)
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	default:
		for p.cur().kind == tokVar {
			q.Vars = append(q.Vars, Var(p.advance().text))
		}
		if len(q.Vars) == 0 {
			return nil, p.errf("SELECT requires *, variables, or a COUNT expression")
		}
	}
	g, err := p.whereClause()
	if err != nil {
		return nil, err
	}
	q.Where = g
	// Solution modifiers.
	for {
		switch {
		case p.acceptKeyword("ORDER"):
			if !p.acceptKeyword("BY") {
				return nil, p.errf("ORDER must be followed by BY")
			}
			n0 := len(q.OrderBy)
			for more := true; more; {
				switch {
				case p.cur().kind == tokVar:
					q.OrderBy = append(q.OrderBy, OrderKey{Var: Var(p.advance().text)})
				case p.isKeyword("ASC") || p.isKeyword("DESC"):
					desc := p.cur().text == "DESC"
					p.advance()
					if err := p.expectPunct("("); err != nil {
						return nil, err
					}
					if p.cur().kind != tokVar {
						return nil, p.errf("ORDER BY ASC/DESC requires a variable")
					}
					q.OrderBy = append(q.OrderBy, OrderKey{Var: Var(p.advance().text), Desc: desc})
					if err := p.expectPunct(")"); err != nil {
						return nil, err
					}
				default:
					if len(q.OrderBy) == n0 {
						return nil, p.errf("ORDER BY requires at least one key")
					}
					more = false
				}
			}
		case p.acceptKeyword("LIMIT"):
			if p.cur().kind != tokNumber {
				return nil, p.errf("LIMIT requires an integer")
			}
			n, err := parseInt(p.advance().text)
			if err != nil {
				return nil, p.errf("bad LIMIT: %v", err)
			}
			q.Limit = n
		case p.acceptKeyword("OFFSET"):
			if p.cur().kind != tokNumber {
				return nil, p.errf("OFFSET requires an integer")
			}
			n, err := parseInt(p.advance().text)
			if err != nil {
				return nil, p.errf("bad OFFSET: %v", err)
			}
			q.Offset = n
		default:
			return q, nil
		}
	}
}

func parseInt(s string) (int, error) {
	var n int
	_, err := fmt.Sscanf(s, "%d", &n)
	return n, err
}

func (p *parser) whereClause() (*GroupGraphPattern, error) {
	p.acceptKeyword("WHERE")
	return p.group()
}

func (p *parser) group() (*GroupGraphPattern, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	g := &GroupGraphPattern{}
	for {
		t := p.cur()
		switch {
		case t.kind == tokPunct && t.text == "}":
			p.advance()
			return g, nil
		case t.kind == tokKeyword && t.text == "FILTER":
			p.advance()
			e, err := p.constraint()
			if err != nil {
				return nil, err
			}
			g.Filters = append(g.Filters, e)
		case t.kind == tokKeyword && t.text == "OPTIONAL":
			p.advance()
			og, err := p.group()
			if err != nil {
				return nil, err
			}
			g.Optionals = append(g.Optionals, og)
		case t.kind == tokKeyword && t.text == "VALUES":
			p.advance()
			vb, err := p.valuesBlock()
			if err != nil {
				return nil, err
			}
			g.Values = append(g.Values, vb)
		case t.kind == tokPunct && t.text == "{":
			// Nested group, possibly a UNION chain or a sub-SELECT.
			ub := &UnionBlock{}
			for {
				alt, err := p.groupOrSubSelect()
				if err != nil {
					return nil, err
				}
				ub.Alternatives = append(ub.Alternatives, alt)
				if !p.acceptKeyword("UNION") {
					break
				}
			}
			g.Unions = append(g.Unions, ub)
		case t.kind == tokPunct && t.text == ".":
			p.advance()
		default:
			if err := p.triplesBlock(g); err != nil {
				return nil, err
			}
		}
	}
}

// groupOrSubSelect parses either a plain group or a sub-SELECT in
// braces. Sub-SELECT projection/modifiers are accepted but flattened:
// only the WHERE pattern is retained, which is sound for the EXISTS
// and join contexts the federated engines generate.
func (p *parser) groupOrSubSelect() (*GroupGraphPattern, error) {
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	if p.isKeyword("SELECT") {
		sub, err := p.selectQuery()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("}"); err != nil {
			return nil, err
		}
		return sub.Where, nil
	}
	// Re-enter group parsing: rewind one token so group() sees '{'.
	p.pos--
	return p.group()
}

func (p *parser) triplesBlock(g *GroupGraphPattern) error {
	s, err := p.elem(false)
	if err != nil {
		return err
	}
	for {
		pe, err := p.elem(true)
		if err != nil {
			return err
		}
		for {
			o, err := p.elem(false)
			if err != nil {
				return err
			}
			g.Patterns = append(g.Patterns, TriplePattern{S: s, P: pe, O: o})
			if p.cur().kind == tokPunct && p.cur().text == "," {
				p.advance()
				continue
			}
			break
		}
		if p.cur().kind == tokPunct && p.cur().text == ";" {
			p.advance()
			// Allow trailing ';' before '.' or '}'.
			if p.cur().kind == tokPunct && (p.cur().text == "." || p.cur().text == "}") {
				break
			}
			continue
		}
		break
	}
	if p.cur().kind == tokPunct && p.cur().text == "." {
		p.advance()
	}
	return nil
}

// elem parses one triple-pattern element. predicate selects whether
// the 'a' keyword is allowed.
func (p *parser) elem(predicate bool) (Elem, error) {
	t := p.cur()
	switch t.kind {
	case tokVar:
		p.advance()
		return V(t.text), nil
	case tokIRI:
		p.advance()
		return C(rdf.IRI(t.text)), nil
	case tokPName:
		p.advance()
		term, err := p.resolvePName(t.text)
		if err != nil {
			return Elem{}, err
		}
		return C(term), nil
	case tokLiteral:
		p.advance()
		term, err := p.literalTerm(t)
		if err != nil {
			return Elem{}, err
		}
		return C(term), nil
	case tokNumber:
		p.advance()
		return C(numberTerm(t.text)), nil
	case tokKeyword:
		switch t.text {
		case "A":
			if !predicate {
				return Elem{}, p.errf("'a' is only valid in predicate position")
			}
			p.advance()
			return C(rdf.IRI(rdf.RDFType)), nil
		case "TRUE":
			p.advance()
			return C(rdf.Bool(true)), nil
		case "FALSE":
			p.advance()
			return C(rdf.Bool(false)), nil
		}
	}
	return Elem{}, p.errf("expected a triple-pattern element, found %q", t.text)
}

func (p *parser) resolvePName(pname string) (rdf.Term, error) {
	if strings.HasPrefix(pname, "_:") {
		// Blank node in a pattern: treated as a fresh variable per
		// SPARQL semantics; we give it a reserved variable name.
		return rdf.Term{}, fmt.Errorf("sparql: blank nodes in query patterns are not supported; use a variable")
	}
	i := strings.IndexByte(pname, ':')
	if i < 0 {
		return rdf.Term{}, fmt.Errorf("sparql: expected a prefixed name, found %q", pname)
	}
	prefix, local := pname[:i], pname[i+1:]
	base, ok := p.prefixes[prefix]
	if !ok {
		return rdf.Term{}, fmt.Errorf("sparql: undeclared prefix %q", prefix)
	}
	return rdf.IRI(base + local), nil
}

func (p *parser) literalTerm(t token) (rdf.Term, error) {
	switch {
	case t.litLang != "":
		return rdf.LangLiteral(t.litVal, t.litLang), nil
	case strings.HasPrefix(t.litDT, "pname:"):
		term, err := p.resolvePName(strings.TrimPrefix(t.litDT, "pname:"))
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.TypedLiteral(t.litVal, term.Value), nil
	case t.litDT != "":
		return rdf.TypedLiteral(t.litVal, t.litDT), nil
	default:
		return rdf.Literal(t.litVal), nil
	}
}

func numberTerm(s string) rdf.Term {
	if strings.ContainsAny(s, ".eE") {
		return rdf.TypedLiteral(s, rdf.XSDDecimal)
	}
	return rdf.TypedLiteral(s, rdf.XSDInteger)
}

func (p *parser) valuesBlock() (*ValuesBlock, error) {
	vb := &ValuesBlock{}
	multi := false
	if p.cur().kind == tokPunct && p.cur().text == "(" {
		multi = true
		p.advance()
		for p.cur().kind == tokVar {
			vb.Vars = append(vb.Vars, Var(p.advance().text))
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	} else if p.cur().kind == tokVar {
		vb.Vars = append(vb.Vars, Var(p.advance().text))
	} else {
		return nil, p.errf("VALUES requires a variable or a variable list")
	}
	if err := p.expectPunct("{"); err != nil {
		return nil, err
	}
	for {
		if p.cur().kind == tokPunct && p.cur().text == "}" {
			p.advance()
			return vb, nil
		}
		if multi {
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			row := make([]rdf.Term, 0, len(vb.Vars))
			for len(row) < len(vb.Vars) {
				t, err := p.valuesTerm()
				if err != nil {
					return nil, err
				}
				row = append(row, t)
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			vb.Rows = append(vb.Rows, row)
		} else {
			t, err := p.valuesTerm()
			if err != nil {
				return nil, err
			}
			vb.Rows = append(vb.Rows, []rdf.Term{t})
		}
	}
}

func (p *parser) valuesTerm() (rdf.Term, error) {
	t := p.cur()
	switch t.kind {
	case tokIRI:
		p.advance()
		return rdf.IRI(t.text), nil
	case tokPName:
		p.advance()
		return p.resolvePName(t.text)
	case tokLiteral:
		p.advance()
		return p.literalTerm(t)
	case tokNumber:
		p.advance()
		return numberTerm(t.text), nil
	case tokKeyword:
		switch t.text {
		case "UNDEF":
			p.advance()
			return rdf.Term{}, nil
		case "TRUE":
			p.advance()
			return rdf.Bool(true), nil
		case "FALSE":
			p.advance()
			return rdf.Bool(false), nil
		}
	}
	return rdf.Term{}, p.errf("expected a VALUES term, found %q", t.text)
}

// constraint parses a FILTER constraint.
func (p *parser) constraint() (Expr, error) {
	if p.isKeyword("NOT") || p.isKeyword("EXISTS") {
		return p.existsExpr()
	}
	if p.cur().kind == tokPunct && p.cur().text == "(" {
		p.advance()
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	// Bare builtin call, e.g. FILTER regex(?x, "a").
	return p.primary()
}

func (p *parser) existsExpr() (Expr, error) {
	not := p.acceptKeyword("NOT")
	if !p.acceptKeyword("EXISTS") {
		return nil, p.errf("expected EXISTS")
	}
	g, err := p.groupOrSubSelect()
	if err != nil {
		return nil, err
	}
	return &ExistsExpr{Not: not, Group: g}, nil
}

// Expression grammar with precedence: || < && < relational < additive
// < multiplicative < unary < primary.
func (p *parser) expr() (Expr, error) { return p.orExpr() }

func (p *parser) orExpr() (Expr, error) {
	l, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPunct && p.cur().text == "||" {
		p.advance()
		r, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "||", Left: l, Right: r}
	}
	return l, nil
}

func (p *parser) andExpr() (Expr, error) {
	l, err := p.relExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPunct && p.cur().text == "&&" {
		p.advance()
		r, err := p.relExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: "&&", Left: l, Right: r}
	}
	return l, nil
}

func (p *parser) relExpr() (Expr, error) {
	l, err := p.addExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokPunct {
		switch p.cur().text {
		case "=", "!=", "<", "<=", ">", ">=":
			op := p.advance().text
			r, err := p.addExpr()
			if err != nil {
				return nil, err
			}
			return &BinaryExpr{Op: op, Left: l, Right: r}, nil
		}
	}
	return l, nil
}

func (p *parser) addExpr() (Expr, error) {
	l, err := p.mulExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPunct && (p.cur().text == "+" || p.cur().text == "-") {
		op := p.advance().text
		r, err := p.mulExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, Left: l, Right: r}
	}
	return l, nil
}

func (p *parser) mulExpr() (Expr, error) {
	l, err := p.unaryExpr()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPunct && (p.cur().text == "*" || p.cur().text == "/") {
		op := p.advance().text
		r, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, Left: l, Right: r}
	}
	return l, nil
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.cur().kind == tokPunct && (p.cur().text == "!" || p.cur().text == "-") {
		op := p.advance().text
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: op, X: x}, nil
	}
	return p.primary()
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokPunct:
		if t.text == "(" {
			p.advance()
			e, err := p.expr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tokVar:
		p.advance()
		return &VarExpr{Name: Var(t.text)}, nil
	case tokIRI:
		p.advance()
		return &TermExpr{Term: rdf.IRI(t.text)}, nil
	case tokPName:
		p.advance()
		term, err := p.resolvePName(t.text)
		if err != nil {
			return nil, err
		}
		return &TermExpr{Term: term}, nil
	case tokLiteral:
		p.advance()
		term, err := p.literalTerm(t)
		if err != nil {
			return nil, err
		}
		return &TermExpr{Term: term}, nil
	case tokNumber:
		p.advance()
		return &TermExpr{Term: numberTerm(t.text)}, nil
	case tokKeyword:
		switch t.text {
		case "TRUE":
			p.advance()
			return &TermExpr{Term: rdf.Bool(true)}, nil
		case "FALSE":
			p.advance()
			return &TermExpr{Term: rdf.Bool(false)}, nil
		case "NOT", "EXISTS":
			return p.existsExpr()
		case "BOUND", "REGEX", "STR", "LANG", "DATATYPE", "CONTAINS",
			"STRSTARTS", "STRENDS", "STRLEN", "LCASE", "UCASE",
			"ISIRI", "ISURI", "ISLITERAL", "ISBLANK":
			p.advance()
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			call := &CallExpr{Func: t.text}
			if !(p.cur().kind == tokPunct && p.cur().text == ")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.cur().kind == tokPunct && p.cur().text == "," {
						p.advance()
						continue
					}
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
	}
	return nil, p.errf("expected an expression, found %q", t.text)
}
