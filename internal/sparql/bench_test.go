package sparql

import (
	"bytes"
	"fmt"
	"testing"

	"lusail/internal/rdf"
)

// benchResults builds n rows with shuffled-ish keys (i*7919 mod n) so
// Sort has real work to do.
func benchResults(n int) *Results {
	rows := make([]Binding, n)
	for i := range rows {
		k := (i * 7919) % n
		rows[i] = Binding{
			"s": rdf.IRI(fmt.Sprintf("http://ex/s%06d", k)),
			"o": rdf.Literal(fmt.Sprintf("value-%06d", i)),
		}
	}
	return &Results{Vars: []Var{"s", "o"}, Rows: rows}
}

// Sort precomputes one key per row (KeyColumn) instead of rendering
// keys inside the comparator, where sort.Sort would render each row's
// key O(log n) times.
func BenchmarkResultsSort10k(b *testing.B) {
	src := benchResults(10_000)
	rows := make([]Binding, len(src.Rows))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(rows, src.Rows)
		r := &Results{Vars: src.Vars, Rows: rows}
		r.Sort()
	}
}

func BenchmarkBindingKey(b *testing.B) {
	row := Binding{
		"s": rdf.IRI("http://example.org/resource/subject-000123"),
		"p": rdf.IRI("http://example.org/vocabulary#predicate"),
		"o": rdf.LangLiteral("a literal value with some length to it", "en"),
	}
	vars := []Var{"s", "p", "o"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = row.Key(vars)
	}
}

func BenchmarkKeyColumn10k(b *testing.B) {
	src := benchResults(10_000)
	vars := []Var{"s", "o"}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = KeyColumn(src.Rows, vars)
	}
}

// Streaming decode of a 10k-row SPARQL JSON result set, the per-query
// hot path at the federator (every subquery response passes through
// it).
func BenchmarkDecodeJSON10k(b *testing.B) {
	var buf bytes.Buffer
	if err := benchResults(10_000).EncodeJSON(&buf); err != nil {
		b.Fatal(err)
	}
	wire := buf.Bytes()
	b.SetBytes(int64(len(wire)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := DecodeJSON(bytes.NewReader(wire))
		if err != nil {
			b.Fatal(err)
		}
		if res.Len() != 10_000 {
			b.Fatalf("rows = %d, want 10000", res.Len())
		}
	}
}

// Decode of a result set with heavy term repetition (the common case:
// a bound phase-2 subquery returns the same IRIs over and over), where
// the intern table collapses duplicate term strings.
func BenchmarkDecodeJSONRepetitive(b *testing.B) {
	rows := make([]Binding, 10_000)
	for i := range rows {
		rows[i] = Binding{
			"s": rdf.IRI(fmt.Sprintf("http://ex/s%d", i%100)),
			"o": rdf.TypedLiteral(fmt.Sprintf("%d", i%50), "http://www.w3.org/2001/XMLSchema#integer"),
		}
	}
	var buf bytes.Buffer
	if err := (&Results{Vars: []Var{"s", "o"}, Rows: rows}).EncodeJSON(&buf); err != nil {
		b.Fatal(err)
	}
	wire := buf.Bytes()
	b.SetBytes(int64(len(wire)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeJSON(bytes.NewReader(wire)); err != nil {
			b.Fatal(err)
		}
	}
}
