package sparql

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"lusail/internal/rdf"
)

// EncodeCSV writes r in the SPARQL 1.1 Query Results CSV Format: plain
// values, IRIs bare, literals unquoted lexical forms (the lossy,
// spreadsheet-friendly format).
func (r *Results) EncodeCSV(w io.Writer) error {
	if r.AskForm {
		_, err := fmt.Fprintf(w, "ask\r\n%t\r\n", r.Ask)
		return err
	}
	cw := csv.NewWriter(w)
	cw.UseCRLF = true
	header := make([]string, len(r.Vars))
	for i, v := range r.Vars {
		header[i] = string(v)
	}
	if err := cw.Write(header); err != nil {
		return err
	}
	for _, row := range r.Rows {
		rec := make([]string, len(r.Vars))
		for i, v := range r.Vars {
			if t, ok := row[v]; ok {
				rec[i] = t.Value
			}
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// EncodeTSV writes r in the SPARQL 1.1 Query Results TSV Format:
// terms in full Turtle/N-Triples syntax, tab separated — lossless,
// unlike CSV.
func (r *Results) EncodeTSV(w io.Writer) error {
	if r.AskForm {
		_, err := fmt.Fprintf(w, "?ask\n%t\n", r.Ask)
		return err
	}
	var b strings.Builder
	for i, v := range r.Vars {
		if i > 0 {
			b.WriteByte('\t')
		}
		b.WriteByte('?')
		b.WriteString(string(v))
	}
	b.WriteByte('\n')
	for _, row := range r.Rows {
		for i, v := range r.Vars {
			if i > 0 {
				b.WriteByte('\t')
			}
			if t, ok := row[v]; ok {
				b.WriteString(tsvTerm(t))
			}
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// tsvTerm renders a term for TSV: N-Triples syntax with tabs and
// newlines escaped inside literals (they would break the framing).
func tsvTerm(t rdf.Term) string {
	s := t.String()
	if t.Kind == rdf.KindLiteral {
		// Term.String already escapes \n, \r, \t inside literals.
		return s
	}
	return s
}
