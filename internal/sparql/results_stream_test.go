package sparql

import (
	"strings"
	"testing"

	"lusail/internal/rdf"
)

// The incremental encoder must produce a document the streaming
// decoder round-trips exactly, chunk boundaries notwithstanding.
func TestJSONRowEncoderRoundTrip(t *testing.T) {
	vars := []Var{"s", "o"}
	chunks := [][]Binding{
		{
			{"s": rdf.IRI("http://ex/a"), "o": rdf.Literal("plain")},
			{"s": rdf.IRI("http://ex/b"), "o": rdf.LangLiteral("hi", "en")},
		},
		{
			{"s": rdf.Blank("b0"), "o": rdf.TypedLiteral("42", "http://www.w3.org/2001/XMLSchema#integer")},
		},
		{
			// A row with an unbound variable: o absent.
			{"s": rdf.IRI("http://ex/c")},
		},
	}
	var sb strings.Builder
	enc := NewJSONRowEncoder(&sb)
	for _, c := range chunks {
		if err := enc.Rows(vars, c); err != nil {
			t.Fatalf("Rows: %v", err)
		}
	}
	if err := enc.Close(vars); err != nil {
		t.Fatalf("Close: %v", err)
	}

	dec, err := DecodeJSONStream(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("DecodeJSONStream: %v\ndoc: %s", err, sb.String())
	}
	if len(dec.Vars) != 2 || dec.Vars[0] != "s" || dec.Vars[1] != "o" {
		t.Errorf("vars = %v, want [s o]", dec.Vars)
	}
	var want []Binding
	for _, c := range chunks {
		want = append(want, c...)
	}
	if len(dec.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(dec.Rows), len(want))
	}
	for i, row := range want {
		got := dec.Rows[i]
		if len(got) != len(row) {
			t.Errorf("row %d = %v, want %v", i, got, row)
			continue
		}
		for v, tm := range row {
			if got[v] != tm {
				t.Errorf("row %d var %s = %v, want %v", i, v, got[v], tm)
			}
		}
	}
}

// An encoder that saw no rows still closes into a valid empty document.
func TestJSONRowEncoderEmpty(t *testing.T) {
	var sb strings.Builder
	enc := NewJSONRowEncoder(&sb)
	if enc.Started() {
		t.Error("Started before any write")
	}
	if err := enc.Close([]Var{"x"}); err != nil {
		t.Fatalf("Close: %v", err)
	}
	dec, err := DecodeJSONStream(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("DecodeJSONStream: %v\ndoc: %s", err, sb.String())
	}
	if len(dec.Rows) != 0 || len(dec.Vars) != 1 || dec.Vars[0] != "x" {
		t.Errorf("decoded = %+v, want empty rows, vars [x]", dec)
	}
}
