package sparql

import (
	"bytes"
	"strings"
	"testing"

	"lusail/internal/rdf"
)

func csvFixture() *Results {
	return &Results{
		Vars: []Var{"s", "o"},
		Rows: []Binding{
			{"s": rdf.IRI("http://ex/1"), "o": rdf.Literal(`va"l,ue`)},
			{"s": rdf.IRI("http://ex/2")}, // o unbound
			{"s": rdf.Blank("b0"), "o": rdf.Integer(7)},
		},
	}
}

func TestEncodeCSV(t *testing.T) {
	var buf bytes.Buffer
	if err := csvFixture().EncodeCSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\r\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d: %q", len(lines), buf.String())
	}
	if lines[0] != "s,o" {
		t.Errorf("header = %q", lines[0])
	}
	// The comma-and-quote literal must be CSV-quoted.
	if !strings.Contains(lines[1], `"va""l,ue"`) {
		t.Errorf("row 1 = %q", lines[1])
	}
	if lines[2] != "http://ex/2," {
		t.Errorf("unbound cell = %q", lines[2])
	}
}

func TestEncodeCSVAsk(t *testing.T) {
	var buf bytes.Buffer
	if err := NewAskResult(true).EncodeCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "true") {
		t.Errorf("ask csv = %q", buf.String())
	}
}

func TestEncodeTSV(t *testing.T) {
	var buf bytes.Buffer
	if err := csvFixture().EncodeTSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "?s\t?o" {
		t.Errorf("header = %q", lines[0])
	}
	// TSV is lossless: IRIs bracketed, literals quoted.
	if !strings.HasPrefix(lines[1], "<http://ex/1>\t") {
		t.Errorf("row 1 = %q", lines[1])
	}
	if !strings.Contains(lines[3], "_:b0") || !strings.Contains(lines[3], "XMLSchema#integer") {
		t.Errorf("row 3 = %q", lines[3])
	}
}

func TestEncodeTSVEscapesControlChars(t *testing.T) {
	r := &Results{
		Vars: []Var{"x"},
		Rows: []Binding{{"x": rdf.Literal("a\tb\nc")}},
	}
	var buf bytes.Buffer
	if err := r.EncodeTSV(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("control chars broke TSV framing: %q", buf.String())
	}
	if !strings.Contains(lines[1], `\t`) || !strings.Contains(lines[1], `\n`) {
		t.Errorf("row = %q", lines[1])
	}
}
