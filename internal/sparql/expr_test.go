package sparql

import (
	"errors"
	"testing"

	"lusail/internal/rdf"
)

// evalFilter parses a FILTER constraint expression and evaluates it
// under b.
func evalFilter(t *testing.T, src string, b Binding) (bool, error) {
	t.Helper()
	q, err := Parse(`SELECT * WHERE { ?dummy <http://ex/p> ?dummy2 . FILTER (` + src + `) }`)
	if err != nil {
		t.Fatalf("parse filter %q: %v", src, err)
	}
	return EvalBool(q.Where.Filters[0], b, nil)
}

func TestEvalComparisons(t *testing.T) {
	b := Binding{
		"i": rdf.Integer(10),
		"j": rdf.Integer(3),
		"s": rdf.Literal("abc"),
		"t": rdf.Literal("abd"),
		"u": rdf.IRI("http://ex/x"),
	}
	cases := []struct {
		expr string
		want bool
	}{
		{"?i > ?j", true},
		{"?i < ?j", false},
		{"?i >= 10", true},
		{"?i <= 9", false},
		{"?i = 10", true},
		{"?i != 10", false},
		{"?i = 10.0", true}, // numeric comparison across types
		{"?s < ?t", true},
		{"?s = \"abc\"", true},
		{"?u = <http://ex/x>", true},
		{"?u != <http://ex/y>", true},
		{"?i + ?j = 13", true},
		{"?i - ?j = 7", true},
		{"?i * ?j = 30", true},
		{"?i / 4 = 2.5", true},
		{"-?j = -3", true},
		{"!(?i = 10)", false},
		{"?i > 5 && ?j > 1", true},
		{"?i > 100 || ?j > 1", true},
		{"?i > 100 && ?j > 1", false},
	}
	for _, c := range cases {
		got, err := evalFilter(t, c.expr, b)
		if err != nil {
			t.Errorf("%s: error %v", c.expr, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestEvalTypeErrors(t *testing.T) {
	b := Binding{"u": rdf.IRI("http://ex/x"), "s": rdf.Literal("a")}
	for _, expr := range []string{
		"?unbound > 1",    // unbound variable
		"?u > 1",          // IRI in numeric comparison
		"?s + 1 = 2",      // string arithmetic
		"?s / 0 = 1",      // (string / int)
		"1 / 0 = 1",       // division by zero
		"LANG(?u) = \"\"", // LANG of IRI
	} {
		_, err := evalFilter(t, expr, b)
		if err == nil {
			t.Errorf("%s: want type error", expr)
		} else if !errors.Is(err, ErrExprType) {
			t.Errorf("%s: error %v, want ErrExprType", expr, err)
		}
	}
}

func TestEvalLogicalErrorAbsorption(t *testing.T) {
	// SPARQL: TRUE || error = TRUE; FALSE && error = FALSE.
	b := Binding{"i": rdf.Integer(1)}
	got, err := evalFilter(t, "?i = 1 || ?unbound > 2", b)
	if err != nil || !got {
		t.Errorf("TRUE || error = (%v, %v), want (true, nil)", got, err)
	}
	got, err = evalFilter(t, "?i = 2 && ?unbound > 2", b)
	if err != nil || got {
		t.Errorf("FALSE && error = (%v, %v), want (false, nil)", got, err)
	}
	if _, err = evalFilter(t, "?i = 2 || ?unbound > 2", b); err == nil {
		t.Error("FALSE || error should propagate the error")
	}
}

func TestEvalStringFunctions(t *testing.T) {
	b := Binding{
		"s":  rdf.Literal("Hello World"),
		"fr": rdf.LangLiteral("bonjour", "fr"),
		"u":  rdf.IRI("http://example.org/thing"),
		"n":  rdf.Integer(5),
	}
	cases := []struct {
		expr string
		want bool
	}{
		{`CONTAINS(?s, "World")`, true},
		{`CONTAINS(?s, "world")`, false},
		{`STRSTARTS(?s, "Hello")`, true},
		{`STRENDS(?s, "World")`, true},
		{`STRLEN(?s) = 11`, true},
		{`LCASE(?s) = "hello world"`, true},
		{`UCASE(?s) = "HELLO WORLD"`, true},
		{`STR(?u) = "http://example.org/thing"`, true},
		{`STRSTARTS(STR(?u), "http://example.org")`, true},
		{`LANG(?fr) = "fr"`, true},
		{`LANG(?s) = ""`, true},
		{`DATATYPE(?n) = <http://www.w3.org/2001/XMLSchema#integer>`, true},
		{`DATATYPE(?s) = <http://www.w3.org/2001/XMLSchema#string>`, true},
		{`ISIRI(?u)`, true},
		{`ISIRI(?s)`, false},
		{`ISLITERAL(?s)`, true},
		{`ISBLANK(?u)`, false},
		{`REGEX(?s, "^hello", "i")`, true},
		{`REGEX(?s, "^hello")`, false},
		{`REGEX(STR(?u), "example\\.org")`, true},
		{`BOUND(?s)`, true},
		{`BOUND(?nope)`, false},
	}
	for _, c := range cases {
		got, err := evalFilter(t, c.expr, b)
		if err != nil {
			t.Errorf("%s: error %v", c.expr, err)
			continue
		}
		if got != c.want {
			t.Errorf("%s = %v, want %v", c.expr, got, c.want)
		}
	}
}

func TestEffectiveBool(t *testing.T) {
	cases := []struct {
		t       rdf.Term
		want    bool
		wantErr bool
	}{
		{rdf.Bool(true), true, false},
		{rdf.Bool(false), false, false},
		{rdf.Integer(0), false, false},
		{rdf.Integer(-1), true, false},
		{rdf.Literal(""), false, false},
		{rdf.Literal("x"), true, false},
		{rdf.TypedLiteral("2.5", rdf.XSDDouble), true, false},
		{rdf.IRI("http://x"), false, true},
		{rdf.TypedLiteral("z", "http://ex/custom"), false, true},
	}
	for _, c := range cases {
		got, err := EffectiveBool(c.t)
		if (err != nil) != c.wantErr {
			t.Errorf("EffectiveBool(%v) err = %v, wantErr %v", c.t, err, c.wantErr)
			continue
		}
		if err == nil && got != c.want {
			t.Errorf("EffectiveBool(%v) = %v, want %v", c.t, got, c.want)
		}
	}
}

func TestExistsRequiresEvaluator(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?s ?p ?o . FILTER NOT EXISTS { ?s <http://ex/q> ?z } }`)
	_, err := EvalBool(q.Where.Filters[0], Binding{}, nil)
	if err == nil {
		t.Error("EXISTS without evaluator should fail")
	}
	// With an evaluator.
	got, err := EvalBool(q.Where.Filters[0], Binding{}, func(g *GroupGraphPattern, b Binding) (bool, error) {
		return false, nil
	})
	if err != nil || !got {
		t.Errorf("NOT EXISTS(false) = (%v, %v), want (true, nil)", got, err)
	}
}

func TestExprVars(t *testing.T) {
	q := MustParse(`SELECT * WHERE { ?s ?p ?o . FILTER (?a > 1 && REGEX(?b, "x") || !BOUND(?c)) }`)
	vars := q.Where.Filters[0].Vars()
	want := map[Var]bool{"a": true, "b": true, "c": true}
	if len(vars) != 3 {
		t.Fatalf("vars = %v", vars)
	}
	for _, v := range vars {
		if !want[v] {
			t.Errorf("unexpected var %v", v)
		}
	}
}
