package sparql

import (
	"fmt"
	"strings"
)

// String renders the query as SPARQL text that Parse accepts again.
// Prefixes are not emitted: all terms are already expanded to full
// IRIs, which is what the federated engines ship to endpoints.
func (q *Query) String() string {
	var b strings.Builder
	switch q.Form {
	case AskForm:
		b.WriteString("ASK ")
	default:
		b.WriteString("SELECT ")
		if q.Distinct {
			b.WriteString("DISTINCT ")
		}
		switch {
		case q.Count:
			b.WriteString("(COUNT(")
			if q.CountArg != "" {
				if q.CountDistinct {
					b.WriteString("DISTINCT ")
				}
				b.WriteString("?" + string(q.CountArg))
			} else {
				b.WriteString("*")
			}
			b.WriteString(") AS ?" + string(q.CountVar) + ") ")
		case len(q.Vars) == 0:
			b.WriteString("* ")
		default:
			for _, v := range q.Vars {
				b.WriteString("?" + string(v) + " ")
			}
		}
	}
	b.WriteString("WHERE ")
	b.WriteString(serializeGroup(q.Where, 0))
	for i, k := range q.OrderBy {
		if i == 0 {
			b.WriteString("\nORDER BY")
		}
		if k.Desc {
			b.WriteString(" DESC(?" + string(k.Var) + ")")
		} else {
			b.WriteString(" ?" + string(k.Var))
		}
	}
	if q.Limit >= 0 {
		fmt.Fprintf(&b, "\nLIMIT %d", q.Limit)
	}
	if q.Offset > 0 {
		fmt.Fprintf(&b, "\nOFFSET %d", q.Offset)
	}
	return b.String()
}

func serializeGroup(g *GroupGraphPattern, depth int) string {
	ind := strings.Repeat("  ", depth)
	inner := strings.Repeat("  ", depth+1)
	var b strings.Builder
	b.WriteString("{\n")
	if g != nil {
		for _, tp := range g.Patterns {
			b.WriteString(inner)
			b.WriteString(tp.String())
			b.WriteString(" .\n")
		}
		for _, u := range g.Unions {
			b.WriteString(inner)
			for i, alt := range u.Alternatives {
				if i > 0 {
					b.WriteString(" UNION ")
				}
				b.WriteString(serializeGroup(alt, depth+1))
			}
			b.WriteString("\n")
		}
		for _, vb := range g.Values {
			b.WriteString(inner)
			b.WriteString(serializeValues(vb))
			b.WriteString("\n")
		}
		for _, o := range g.Optionals {
			b.WriteString(inner)
			b.WriteString("OPTIONAL ")
			b.WriteString(serializeGroup(o, depth+1))
			b.WriteString("\n")
		}
		for _, f := range g.Filters {
			b.WriteString(inner)
			if ex, ok := f.(*ExistsExpr); ok {
				kw := "FILTER EXISTS "
				if ex.Not {
					kw = "FILTER NOT EXISTS "
				}
				b.WriteString(kw)
				b.WriteString(serializeGroup(ex.Group, depth+1))
			} else {
				b.WriteString("FILTER (")
				b.WriteString(f.String())
				b.WriteString(")")
			}
			b.WriteString("\n")
		}
	}
	b.WriteString(ind)
	b.WriteString("}")
	return b.String()
}

func serializeValues(vb *ValuesBlock) string {
	var b strings.Builder
	b.WriteString("VALUES ")
	multi := len(vb.Vars) != 1
	if multi {
		b.WriteString("(")
		for i, v := range vb.Vars {
			if i > 0 {
				b.WriteString(" ")
			}
			b.WriteString("?" + string(v))
		}
		b.WriteString(")")
	} else {
		b.WriteString("?" + string(vb.Vars[0]))
	}
	b.WriteString(" { ")
	for _, row := range vb.Rows {
		if multi {
			b.WriteString("(")
		}
		for i, t := range row {
			if i > 0 {
				b.WriteString(" ")
			}
			if t.IsZero() {
				b.WriteString("UNDEF")
			} else {
				b.WriteString(t.String())
			}
		}
		if multi {
			b.WriteString(")")
		}
		b.WriteString(" ")
	}
	b.WriteString("}")
	return b.String()
}
