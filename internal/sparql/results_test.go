package sparql

import (
	"bytes"
	"reflect"
	"testing"

	"lusail/internal/rdf"
)

func TestResultsJSONRoundTrip(t *testing.T) {
	r := &Results{
		Vars: []Var{"s", "o"},
		Rows: []Binding{
			{"s": rdf.IRI("http://ex/1"), "o": rdf.Literal("plain")},
			{"s": rdf.IRI("http://ex/2"), "o": rdf.LangLiteral("salut", "fr")},
			{"s": rdf.Blank("b0"), "o": rdf.Integer(42)},
			{"s": rdf.IRI("http://ex/3")}, // o unbound
		},
	}
	var buf bytes.Buffer
	if err := r.EncodeJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := DecodeJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Vars, back.Vars) {
		t.Errorf("vars = %v, want %v", back.Vars, r.Vars)
	}
	if len(back.Rows) != len(r.Rows) {
		t.Fatalf("rows = %d, want %d", len(back.Rows), len(r.Rows))
	}
	for i := range r.Rows {
		if !reflect.DeepEqual(r.Rows[i], back.Rows[i]) {
			t.Errorf("row %d = %v, want %v", i, back.Rows[i], r.Rows[i])
		}
	}
}

func TestAskJSONRoundTrip(t *testing.T) {
	for _, v := range []bool{true, false} {
		var buf bytes.Buffer
		if err := NewAskResult(v).EncodeJSON(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := DecodeJSON(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !back.AskForm || back.Ask != v {
			t.Errorf("ask round trip = %+v, want Ask=%v", back, v)
		}
	}
}

func TestDecodeJSONErrors(t *testing.T) {
	if _, err := DecodeJSON(bytes.NewBufferString(`{bad json`)); err == nil {
		t.Error("bad JSON accepted")
	}
	if _, err := DecodeJSON(bytes.NewBufferString(`{"head":{"vars":["x"]},"results":{"bindings":[{"x":{"type":"martian","value":"v"}}]}}`)); err == nil {
		t.Error("unknown term type accepted")
	}
}

func TestDecodeVirtuosoTypedLiteral(t *testing.T) {
	// Some engines emit "typed-literal"; accept it.
	in := `{"head":{"vars":["x"]},"results":{"bindings":[{"x":{"type":"typed-literal","datatype":"http://www.w3.org/2001/XMLSchema#integer","value":"5"}}]}}`
	r, err := DecodeJSON(bytes.NewBufferString(in))
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0]["x"] != rdf.Integer(5) {
		t.Errorf("term = %v", r.Rows[0]["x"])
	}
}

func TestResultsSortAndProject(t *testing.T) {
	r := &Results{
		Vars: []Var{"a", "b"},
		Rows: []Binding{
			{"a": rdf.IRI("http://z"), "b": rdf.IRI("http://1")},
			{"a": rdf.IRI("http://a"), "b": rdf.IRI("http://2")},
		},
	}
	r.Sort()
	if r.Rows[0]["a"] != rdf.IRI("http://a") {
		t.Error("sort did not order rows")
	}
	p := r.Project([]Var{"b"})
	if len(p.Vars) != 1 || len(p.Rows) != 2 {
		t.Fatalf("project shape wrong: %+v", p)
	}
	if _, ok := p.Rows[0]["a"]; ok {
		t.Error("projection kept dropped variable")
	}
}

func TestApproxWireBytes(t *testing.T) {
	small := &Results{Vars: []Var{"x"}, Rows: []Binding{{"x": rdf.Literal("a")}}}
	big := &Results{Vars: []Var{"x"}}
	for i := 0; i < 1000; i++ {
		big.Rows = append(big.Rows, Binding{"x": rdf.Literal("some longer literal value")})
	}
	if small.ApproxWireBytes() >= big.ApproxWireBytes() {
		t.Error("wire size estimate not monotone in data size")
	}
	if NewAskResult(true).ApproxWireBytes() <= 0 {
		t.Error("ask results should have positive wire size")
	}
}
