package sparql

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"lusail/internal/rdf"
)

func TestXMLRoundTrip(t *testing.T) {
	r := &Results{
		Vars: []Var{"s", "o"},
		Rows: []Binding{
			{"s": rdf.IRI("http://ex/1"), "o": rdf.Literal("plain & <escaped>")},
			{"s": rdf.IRI("http://ex/2"), "o": rdf.LangLiteral("salut", "fr")},
			{"s": rdf.Blank("b0"), "o": rdf.Integer(42)},
			{"s": rdf.IRI("http://ex/3")}, // o unbound
		},
	}
	var buf bytes.Buffer
	if err := r.EncodeXML(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "sparql-results#") {
		t.Errorf("missing namespace: %s", buf.String())
	}
	back, err := DecodeXML(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Vars, back.Vars) {
		t.Errorf("vars = %v", back.Vars)
	}
	if len(back.Rows) != len(r.Rows) {
		t.Fatalf("rows = %d, want %d", len(back.Rows), len(r.Rows))
	}
	for i := range r.Rows {
		if !reflect.DeepEqual(r.Rows[i], back.Rows[i]) {
			t.Errorf("row %d = %v, want %v", i, back.Rows[i], r.Rows[i])
		}
	}
}

func TestXMLAskRoundTrip(t *testing.T) {
	for _, v := range []bool{true, false} {
		var buf bytes.Buffer
		if err := NewAskResult(v).EncodeXML(&buf); err != nil {
			t.Fatal(err)
		}
		back, err := DecodeXML(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if !back.AskForm || back.Ask != v {
			t.Errorf("ask round trip = %+v, want %v", back, v)
		}
	}
}

func TestXMLDecodeErrors(t *testing.T) {
	if _, err := DecodeXML(strings.NewReader("<not-xml")); err == nil {
		t.Error("bad XML accepted")
	}
	empty := `<?xml version="1.0"?><sparql xmlns="http://www.w3.org/2005/sparql-results#"><head/><results><result><binding name="x"/></result></results></sparql>`
	if _, err := DecodeXML(strings.NewReader(empty)); err == nil {
		t.Error("term-less binding accepted")
	}
}
