package sparql

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"lusail/internal/rdf"
)

// genExpr builds a random expression AST of bounded depth.
func genExpr(r *rand.Rand, depth int) Expr {
	if depth <= 0 || r.Intn(3) == 0 {
		switch r.Intn(4) {
		case 0:
			return &VarExpr{Name: Var([]string{"a", "b", "c"}[r.Intn(3)])}
		case 1:
			return &TermExpr{Term: rdf.Integer(int64(r.Intn(100)))}
		case 2:
			return &TermExpr{Term: rdf.Literal(fmt.Sprintf("lit%d", r.Intn(10)))}
		default:
			return &TermExpr{Term: rdf.IRI(fmt.Sprintf("http://ex/t%d", r.Intn(10)))}
		}
	}
	switch r.Intn(7) {
	case 0, 1:
		ops := []string{"&&", "||"}
		return &BinaryExpr{Op: ops[r.Intn(2)], Left: genExpr(r, depth-1), Right: genExpr(r, depth-1)}
	case 2, 3:
		ops := []string{"=", "!=", "<", "<=", ">", ">="}
		return &BinaryExpr{Op: ops[r.Intn(len(ops))], Left: genExpr(r, depth-1), Right: genExpr(r, depth-1)}
	case 4:
		ops := []string{"+", "-", "*", "/"}
		return &BinaryExpr{Op: ops[r.Intn(len(ops))], Left: genExpr(r, depth-1), Right: genExpr(r, depth-1)}
	case 5:
		return &UnaryExpr{Op: "!", X: genExpr(r, depth-1)}
	default:
		fns := []string{"STR", "LCASE", "UCASE", "STRLEN", "ISIRI", "ISLITERAL"}
		return &CallExpr{Func: fns[r.Intn(len(fns))], Args: []Expr{genExpr(r, depth-1)}}
	}
}

// TestQuickExprSerializeRoundTrip: any expression serialized into a
// FILTER and reparsed yields a structurally identical AST — operator
// precedence and parenthesization survive.
func TestQuickExprSerializeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		e := genExpr(r, 4)
		src := "SELECT * WHERE { ?a <http://ex/p> ?b . FILTER (" + e.String() + ") }"
		q, err := Parse(src)
		if err != nil {
			t.Logf("seed %d: %v\nexpr: %s", seed, err, e.String())
			return false
		}
		if len(q.Where.Filters) != 1 {
			return false
		}
		back := q.Where.Filters[0]
		if !reflect.DeepEqual(e, back) {
			t.Logf("seed %d AST mismatch:\n in: %#v\nout: %#v\ntext: %s", seed, e, back, e.String())
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// genGroup builds a random group graph pattern (patterns + filters +
// optional + union + values) for whole-query round-trips.
func genGroup(r *rand.Rand, depth int) *GroupGraphPattern {
	g := &GroupGraphPattern{}
	vars := []string{"a", "b", "c", "d"}
	elem := func() Elem {
		if r.Intn(2) == 0 {
			return V(vars[r.Intn(len(vars))])
		}
		return C(rdf.IRI(fmt.Sprintf("http://ex/t%d", r.Intn(6))))
	}
	for i := 0; i < 1+r.Intn(3); i++ {
		g.Patterns = append(g.Patterns, TriplePattern{
			S: V(vars[r.Intn(len(vars))]),
			P: C(rdf.IRI(fmt.Sprintf("http://ex/p%d", r.Intn(4)))),
			O: elem(),
		})
	}
	if r.Intn(3) == 0 {
		g.Filters = append(g.Filters, genExpr(r, 2))
	}
	if depth > 0 && r.Intn(3) == 0 {
		g.Optionals = append(g.Optionals, genGroup(r, depth-1))
	}
	if depth > 0 && r.Intn(4) == 0 {
		g.Unions = append(g.Unions, &UnionBlock{Alternatives: []*GroupGraphPattern{
			genGroup(r, 0), genGroup(r, 0),
		}})
	}
	if r.Intn(4) == 0 {
		vb := &ValuesBlock{Vars: []Var{"a"}}
		for i := 0; i < 1+r.Intn(3); i++ {
			if r.Intn(4) == 0 {
				vb.Rows = append(vb.Rows, []rdf.Term{{}}) // UNDEF
			} else {
				vb.Rows = append(vb.Rows, []rdf.Term{rdf.IRI(fmt.Sprintf("http://ex/v%d", i))})
			}
		}
		g.Values = append(g.Values, vb)
	}
	return g
}

// TestQuickQuerySerializeRoundTrip: whole random queries survive
// serialize -> parse structurally.
func TestQuickQuerySerializeRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		q := NewSelect()
		q.Where = genGroup(r, 2)
		if r.Intn(2) == 0 {
			q.Distinct = true
		}
		if r.Intn(3) == 0 {
			q.Limit = r.Intn(100)
		}
		if r.Intn(4) == 0 {
			q.Offset = 1 + r.Intn(10)
		}
		if r.Intn(3) == 0 {
			q.OrderBy = []OrderKey{{Var: "a", Desc: r.Intn(2) == 0}}
		}
		text := q.String()
		back, err := Parse(text)
		if err != nil {
			t.Logf("seed %d: %v\n%s", seed, err, text)
			return false
		}
		back.Prefixes = nil
		q.Prefixes = nil
		if !reflect.DeepEqual(q, back) {
			t.Logf("seed %d round-trip mismatch:\n%s", seed, text)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
