package sparql

import (
	"encoding/json"
	"fmt"
	"io"

	"lusail/internal/rdf"
)

// Streaming decoder for the SPARQL 1.1 Query Results JSON Format.
//
// The buffered decoder this replaces unmarshalled the whole payload
// into an intermediate []map[string]jsonTerm before converting to
// Bindings — two full copies of every row, plus one map per row that
// lived just long enough to be converted. This decoder walks the
// json.Decoder token stream instead and builds Bindings directly as
// rows arrive off the wire, so decoding overlaps the network transfer
// and the intermediate representation disappears entirely.
//
// Repeated terms are interned: federated results are dominated by a
// small vocabulary of IRIs (types, predicates, shared entities) that
// recur in thousands of rows, and the intern table makes every
// recurrence share one string allocation. Interned terms also compare
// faster downstream — Go's string equality short-circuits on the data
// pointer, so join probes and Compatible checks on interned terms
// usually never touch the bytes.

// maxInternEntries bounds each intern table so a pathological result
// set with millions of distinct terms cannot balloon the table; past
// the cap, lookups still deduplicate against what's cached but new
// terms are no longer added.
const maxInternEntries = 1 << 16

// internCheckAt is the table size at which the interner evaluates
// whether it is earning its keep (see internTerm).
const internCheckAt = 1 << 12

// interner deduplicates terms and variable names within one decode.
type interner struct {
	vars    map[string]Var
	terms   map[rdf.Term]rdf.Term
	lookups int
	hits    int
}

func newInterner() *interner {
	return &interner{
		vars:  make(map[string]Var, 8),
		terms: make(map[rdf.Term]rdf.Term, 64),
	}
}

func (in *interner) internVar(s string) Var {
	if v, ok := in.vars[s]; ok {
		return v
	}
	v := Var(s)
	if len(in.vars) < maxInternEntries {
		in.vars[s] = v
	}
	return v
}

// internTerm returns the canonical copy of t, deduplicating repeats.
// The table is adaptive: a result set whose terms are almost all
// distinct (row IDs, measurement literals) gets no benefit from
// interning but pays two string hashes per term, so once the table
// reaches internCheckAt entries with under a 1-in-8 hit rate the
// interner shuts itself off for the remainder of the decode.
func (in *interner) internTerm(t rdf.Term) rdf.Term {
	if in.terms == nil {
		return t
	}
	in.lookups++
	if c, ok := in.terms[t]; ok {
		in.hits++
		return c
	}
	if len(in.terms) >= maxInternEntries {
		return t
	}
	in.terms[t] = t
	if len(in.terms) == internCheckAt && in.hits*8 < in.lookups {
		in.terms = nil
	}
	return t
}

// DecodeJSONStream reads the SPARQL 1.1 JSON results format from r,
// decoding rows incrementally. It accepts "head"/"results"/"boolean"
// members in any order, skips unknown members (some stores emit
// "link" or vendor extensions), and reports mid-stream truncation as
// an error rather than silently returning a partial result.
func DecodeJSONStream(r io.Reader) (*Results, error) {
	dec := json.NewDecoder(r)
	out := &Results{}
	in := newInterner()
	if err := expectDelim(dec, '{'); err != nil {
		return nil, decodeErr(err)
	}
	for dec.More() {
		key, err := stringToken(dec, "member name")
		if err != nil {
			return nil, decodeErr(err)
		}
		switch key {
		case "head":
			if err := decodeHead(dec, out, in); err != nil {
				return nil, decodeErr(err)
			}
		case "boolean":
			tok, err := dec.Token()
			if err != nil {
				return nil, decodeErr(err)
			}
			b, ok := tok.(bool)
			if !ok {
				return nil, decodeErr(fmt.Errorf("boolean member is %T, not bool", tok))
			}
			out.AskForm, out.Ask = true, b
		case "results":
			if err := decodeResultsMember(dec, out, in); err != nil {
				return nil, decodeErr(err)
			}
		default:
			if err := skipValue(dec); err != nil {
				return nil, decodeErr(err)
			}
		}
	}
	if err := expectDelim(dec, '}'); err != nil {
		return nil, decodeErr(err)
	}
	return out, nil
}

// decodeHead parses {"vars": ["a", ...], ...}.
func decodeHead(dec *json.Decoder, out *Results, in *interner) error {
	if err := expectDelim(dec, '{'); err != nil {
		return err
	}
	for dec.More() {
		key, err := stringToken(dec, "head member name")
		if err != nil {
			return err
		}
		if key != "vars" {
			if err := skipValue(dec); err != nil {
				return err
			}
			continue
		}
		// ASK results encode "vars": null; tolerate it.
		tok, err := dec.Token()
		if err == io.EOF {
			return io.ErrUnexpectedEOF
		}
		if err != nil {
			return err
		}
		if tok == nil {
			continue
		}
		if d, ok := tok.(json.Delim); !ok || d != '[' {
			return fmt.Errorf("expected \"[\", got %v", tok)
		}
		for dec.More() {
			v, err := stringToken(dec, "variable name")
			if err != nil {
				return err
			}
			out.Vars = append(out.Vars, in.internVar(v))
		}
		if err := expectDelim(dec, ']'); err != nil {
			return err
		}
	}
	return expectDelim(dec, '}')
}

// decodeResultsMember parses {"bindings": [ {...}, ... ], ...}.
func decodeResultsMember(dec *json.Decoder, out *Results, in *interner) error {
	if err := expectDelim(dec, '{'); err != nil {
		return err
	}
	for dec.More() {
		key, err := stringToken(dec, "results member name")
		if err != nil {
			return err
		}
		if key != "bindings" {
			if err := skipValue(dec); err != nil {
				return err
			}
			continue
		}
		if err := expectDelim(dec, '['); err != nil {
			return err
		}
		if out.Rows == nil {
			out.Rows = []Binding{}
		}
		scratch := make(map[string]jsonTerm, 8)
		for dec.More() {
			b, err := decodeBindingObj(dec, in, scratch)
			if err != nil {
				return err
			}
			out.Rows = append(out.Rows, b)
		}
		if err := expectDelim(dec, ']'); err != nil {
			return err
		}
	}
	return expectDelim(dec, '}')
}

// decodeBindingObj parses one solution ({"var": {term}, ...}) with a
// single Decode call into the caller's reused scratch map: the
// compiled map/struct decode path is several times faster than walking
// the same bytes token by token (each Token() round trip boxes its
// result), and reusing the map leaves the Binding itself and
// never-seen-before terms as the only per-row allocations.
func decodeBindingObj(dec *json.Decoder, in *interner, scratch map[string]jsonTerm) (Binding, error) {
	clear(scratch)
	if err := dec.Decode(&scratch); err != nil {
		if err == io.EOF {
			return nil, io.ErrUnexpectedEOF
		}
		return nil, err
	}
	b := make(Binding, len(scratch))
	for name, jt := range scratch {
		t, err := termFromJSON(jt)
		if err != nil {
			return nil, err
		}
		b[in.internVar(name)] = in.internTerm(t)
	}
	return b, nil
}

// expectDelim consumes one token and checks it is the delimiter d.
// Truncated input surfaces as io.ErrUnexpectedEOF.
func expectDelim(dec *json.Decoder, d json.Delim) error {
	tok, err := dec.Token()
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	if err != nil {
		return err
	}
	got, ok := tok.(json.Delim)
	if !ok || got != d {
		return fmt.Errorf("expected %q, got %v", d.String(), tok)
	}
	return nil
}

// stringToken consumes one token and requires it to be a string.
func stringToken(dec *json.Decoder, what string) (string, error) {
	tok, err := dec.Token()
	if err == io.EOF {
		return "", io.ErrUnexpectedEOF
	}
	if err != nil {
		return "", err
	}
	s, ok := tok.(string)
	if !ok {
		return "", fmt.Errorf("expected string %s, got %v", what, tok)
	}
	return s, nil
}

// skipValue consumes exactly one JSON value (scalar, object, or
// array) from the token stream.
func skipValue(dec *json.Decoder) error {
	tok, err := dec.Token()
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	if err != nil {
		return err
	}
	d, ok := tok.(json.Delim)
	if !ok || (d != '{' && d != '[') {
		return nil
	}
	depth := 1
	for depth > 0 {
		tok, err := dec.Token()
		if err == io.EOF {
			return io.ErrUnexpectedEOF
		}
		if err != nil {
			return err
		}
		if d, ok := tok.(json.Delim); ok {
			switch d {
			case '{', '[':
				depth++
			case '}', ']':
				depth--
			}
		}
	}
	return nil
}

func decodeErr(err error) error {
	return fmt.Errorf("sparql: decoding results: %w", err)
}
