package sparql

import (
	"fmt"
	"regexp"
	"strconv"
	"strings"

	"lusail/internal/rdf"
)

// Expr is a SPARQL filter expression node.
type Expr interface {
	// Vars returns the variables referenced by the expression
	// (excluding those only inside EXISTS groups, which are reported
	// too — callers use Vars for filter placement).
	Vars() []Var
	// String renders the expression in SPARQL syntax.
	String() string
}

// VarExpr references a variable.
type VarExpr struct{ Name Var }

// TermExpr is a constant term.
type TermExpr struct{ Term rdf.Term }

// BinaryExpr applies Op to Left and Right. Op is one of
// "||", "&&", "=", "!=", "<", "<=", ">", ">=", "+", "-", "*", "/".
type BinaryExpr struct {
	Op          string
	Left, Right Expr
}

// UnaryExpr applies Op ("!" or "-") to X.
type UnaryExpr struct {
	Op string
	X  Expr
}

// CallExpr is a builtin function call: BOUND, STR, LANG, DATATYPE,
// REGEX, CONTAINS, STRSTARTS, STRENDS, ISIRI, ISLITERAL, ISBLANK, LCASE, UCASE, STRLEN.
type CallExpr struct {
	Func string // upper-cased
	Args []Expr
}

// ExistsExpr is FILTER [NOT] EXISTS { group }.
type ExistsExpr struct {
	Not   bool
	Group *GroupGraphPattern
}

// Vars implementations.

// Vars returns the referenced variable.
func (e *VarExpr) Vars() []Var { return []Var{e.Name} }

// Vars returns nil: constants reference no variables.
func (e *TermExpr) Vars() []Var { return nil }

// Vars returns the union of both operand variable sets.
func (e *BinaryExpr) Vars() []Var { return mergeVars(e.Left.Vars(), e.Right.Vars()) }

// Vars returns the operand's variables.
func (e *UnaryExpr) Vars() []Var { return e.X.Vars() }

// Vars returns the union of all argument variable sets.
func (e *CallExpr) Vars() []Var {
	var out []Var
	for _, a := range e.Args {
		out = mergeVars(out, a.Vars())
	}
	return out
}

// Vars returns the variables of the embedded group.
func (e *ExistsExpr) Vars() []Var { return e.Group.AllVars() }

func mergeVars(a, b []Var) []Var {
	seen := make(map[Var]bool, len(a))
	out := append([]Var(nil), a...)
	for _, v := range a {
		seen[v] = true
	}
	for _, v := range b {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}

// String implementations.

func (e *VarExpr) String() string  { return "?" + string(e.Name) }
func (e *TermExpr) String() string { return e.Term.String() }
func (e *BinaryExpr) String() string {
	return "(" + e.Left.String() + " " + e.Op + " " + e.Right.String() + ")"
}
func (e *UnaryExpr) String() string { return e.Op + "(" + e.X.String() + ")" }
func (e *CallExpr) String() string {
	args := make([]string, len(e.Args))
	for i, a := range e.Args {
		args[i] = a.String()
	}
	return e.Func + "(" + strings.Join(args, ", ") + ")"
}
func (e *ExistsExpr) String() string {
	kw := "EXISTS"
	if e.Not {
		kw = "NOT EXISTS"
	}
	return kw + " " + serializeGroup(e.Group, 1)
}

// ErrExprType signals a SPARQL expression type error; per the SPARQL
// spec, a type error in a FILTER makes the filter reject the row.
var ErrExprType = fmt.Errorf("sparql: expression type error")

// ExistsEvaluator evaluates an EXISTS group under a binding; the
// engine supplies it since expression evaluation cannot see data.
type ExistsEvaluator func(g *GroupGraphPattern, b Binding) (bool, error)

// Eval evaluates the expression under the binding. exists may be nil
// when the expression contains no EXISTS. Unbound variables and type
// mismatches return ErrExprType, matching SPARQL error semantics.
func Eval(e Expr, b Binding, exists ExistsEvaluator) (rdf.Term, error) {
	switch e := e.(type) {
	case *VarExpr:
		t, ok := b[e.Name]
		if !ok {
			return rdf.Term{}, ErrExprType
		}
		return t, nil
	case *TermExpr:
		return e.Term, nil
	case *UnaryExpr:
		return evalUnary(e, b, exists)
	case *BinaryExpr:
		return evalBinary(e, b, exists)
	case *CallExpr:
		return evalCall(e, b, exists)
	case *ExistsExpr:
		if exists == nil {
			return rdf.Term{}, fmt.Errorf("sparql: EXISTS not supported in this context")
		}
		ok, err := exists(e.Group, b)
		if err != nil {
			return rdf.Term{}, err
		}
		if e.Not {
			ok = !ok
		}
		return rdf.Bool(ok), nil
	default:
		return rdf.Term{}, fmt.Errorf("sparql: unknown expression %T", e)
	}
}

// EffectiveBool computes the SPARQL effective boolean value of a term.
func EffectiveBool(t rdf.Term) (bool, error) {
	if t.Kind != rdf.KindLiteral {
		return false, ErrExprType
	}
	switch t.Datatype {
	case rdf.XSDBoolean:
		return t.Value == "true" || t.Value == "1", nil
	case rdf.XSDInteger, rdf.XSDDecimal, rdf.XSDDouble:
		f, err := strconv.ParseFloat(t.Value, 64)
		if err != nil {
			return false, ErrExprType
		}
		return f != 0, nil
	case "":
		return t.Value != "", nil
	default:
		return false, ErrExprType
	}
}

// EvalBool evaluates e and coerces the result to a boolean. A type
// error yields (false, ErrExprType); FILTER treats that as false.
func EvalBool(e Expr, b Binding, exists ExistsEvaluator) (bool, error) {
	t, err := Eval(e, b, exists)
	if err != nil {
		return false, err
	}
	return EffectiveBool(t)
}

func evalUnary(e *UnaryExpr, b Binding, exists ExistsEvaluator) (rdf.Term, error) {
	v, err := Eval(e.X, b, exists)
	if err != nil {
		return rdf.Term{}, err
	}
	switch e.Op {
	case "!":
		bv, err := EffectiveBool(v)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.Bool(!bv), nil
	case "-":
		f, ok := numericValue(v)
		if !ok {
			return rdf.Term{}, ErrExprType
		}
		return numericTerm(-f, v), nil
	default:
		return rdf.Term{}, fmt.Errorf("sparql: unknown unary op %q", e.Op)
	}
}

func evalBinary(e *BinaryExpr, b Binding, exists ExistsEvaluator) (rdf.Term, error) {
	// Logical operators have special error semantics but we use the
	// simple strict form: evaluate both sides lazily.
	switch e.Op {
	case "||":
		lv, lerr := EvalBool(e.Left, b, exists)
		if lerr == nil && lv {
			return rdf.Bool(true), nil
		}
		rv, rerr := EvalBool(e.Right, b, exists)
		if rerr == nil && rv {
			return rdf.Bool(true), nil
		}
		if lerr != nil {
			return rdf.Term{}, lerr
		}
		if rerr != nil {
			return rdf.Term{}, rerr
		}
		return rdf.Bool(false), nil
	case "&&":
		lv, lerr := EvalBool(e.Left, b, exists)
		if lerr == nil && !lv {
			return rdf.Bool(false), nil
		}
		rv, rerr := EvalBool(e.Right, b, exists)
		if rerr == nil && !rv {
			return rdf.Bool(false), nil
		}
		if lerr != nil {
			return rdf.Term{}, lerr
		}
		if rerr != nil {
			return rdf.Term{}, rerr
		}
		return rdf.Bool(true), nil
	}

	l, err := Eval(e.Left, b, exists)
	if err != nil {
		return rdf.Term{}, err
	}
	r, err := Eval(e.Right, b, exists)
	if err != nil {
		return rdf.Term{}, err
	}
	switch e.Op {
	case "=":
		eq, err := termsEqual(l, r)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.Bool(eq), nil
	case "!=":
		eq, err := termsEqual(l, r)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.Bool(!eq), nil
	case "<", "<=", ">", ">=":
		c, err := compareTerms(l, r)
		if err != nil {
			return rdf.Term{}, err
		}
		var res bool
		switch e.Op {
		case "<":
			res = c < 0
		case "<=":
			res = c <= 0
		case ">":
			res = c > 0
		case ">=":
			res = c >= 0
		}
		return rdf.Bool(res), nil
	case "+", "-", "*", "/":
		lf, lok := numericValue(l)
		rf, rok := numericValue(r)
		if !lok || !rok {
			return rdf.Term{}, ErrExprType
		}
		var f float64
		switch e.Op {
		case "+":
			f = lf + rf
		case "-":
			f = lf - rf
		case "*":
			f = lf * rf
		case "/":
			if rf == 0 {
				return rdf.Term{}, ErrExprType
			}
			f = lf / rf
		}
		if isIntegerTerm(l) && isIntegerTerm(r) && e.Op != "/" {
			return rdf.Integer(int64(f)), nil
		}
		return rdf.TypedLiteral(strconv.FormatFloat(f, 'g', -1, 64), rdf.XSDDouble), nil
	default:
		return rdf.Term{}, fmt.Errorf("sparql: unknown binary op %q", e.Op)
	}
}

func evalCall(e *CallExpr, b Binding, exists ExistsEvaluator) (rdf.Term, error) {
	if e.Func == "BOUND" {
		if len(e.Args) != 1 {
			return rdf.Term{}, fmt.Errorf("sparql: BOUND takes one variable")
		}
		ve, ok := e.Args[0].(*VarExpr)
		if !ok {
			return rdf.Term{}, fmt.Errorf("sparql: BOUND argument must be a variable")
		}
		_, bound := b[ve.Name]
		return rdf.Bool(bound), nil
	}
	args := make([]rdf.Term, len(e.Args))
	for i, a := range e.Args {
		v, err := Eval(a, b, exists)
		if err != nil {
			return rdf.Term{}, err
		}
		args[i] = v
	}
	str := func(i int) (string, error) {
		t := args[i]
		if t.Kind == rdf.KindLiteral || t.Kind == rdf.KindIRI {
			return t.Value, nil
		}
		return "", ErrExprType
	}
	switch e.Func {
	case "STR":
		s, err := str(0)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.Literal(s), nil
	case "LANG":
		if args[0].Kind != rdf.KindLiteral {
			return rdf.Term{}, ErrExprType
		}
		return rdf.Literal(args[0].Lang), nil
	case "DATATYPE":
		if args[0].Kind != rdf.KindLiteral {
			return rdf.Term{}, ErrExprType
		}
		dt := args[0].Datatype
		if dt == "" {
			dt = rdf.XSDString
		}
		return rdf.IRI(dt), nil
	case "ISIRI", "ISURI":
		return rdf.Bool(args[0].Kind == rdf.KindIRI), nil
	case "ISLITERAL":
		return rdf.Bool(args[0].Kind == rdf.KindLiteral), nil
	case "ISBLANK":
		return rdf.Bool(args[0].Kind == rdf.KindBlank), nil
	case "CONTAINS":
		a, err := str(0)
		if err != nil {
			return rdf.Term{}, err
		}
		p, err := str(1)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.Bool(strings.Contains(a, p)), nil
	case "STRSTARTS":
		a, err := str(0)
		if err != nil {
			return rdf.Term{}, err
		}
		p, err := str(1)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.Bool(strings.HasPrefix(a, p)), nil
	case "STRENDS":
		a, err := str(0)
		if err != nil {
			return rdf.Term{}, err
		}
		p, err := str(1)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.Bool(strings.HasSuffix(a, p)), nil
	case "STRLEN":
		a, err := str(0)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.Integer(int64(len([]rune(a)))), nil
	case "LCASE":
		a, err := str(0)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.Literal(strings.ToLower(a)), nil
	case "UCASE":
		a, err := str(0)
		if err != nil {
			return rdf.Term{}, err
		}
		return rdf.Literal(strings.ToUpper(a)), nil
	case "REGEX":
		if len(args) < 2 {
			return rdf.Term{}, fmt.Errorf("sparql: REGEX takes 2 or 3 arguments")
		}
		a, err := str(0)
		if err != nil {
			return rdf.Term{}, err
		}
		pat, err := str(1)
		if err != nil {
			return rdf.Term{}, err
		}
		if len(args) == 3 && strings.Contains(args[2].Value, "i") {
			pat = "(?i)" + pat
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			return rdf.Term{}, fmt.Errorf("sparql: bad REGEX pattern: %w", err)
		}
		return rdf.Bool(re.MatchString(a)), nil
	default:
		return rdf.Term{}, fmt.Errorf("sparql: unknown function %q", e.Func)
	}
}

// numericTerm builds a numeric literal preserving the integer datatype
// when the source term was an integer.
func numericTerm(f float64, src rdf.Term) rdf.Term {
	if isIntegerTerm(src) {
		return rdf.Integer(int64(f))
	}
	return rdf.TypedLiteral(strconv.FormatFloat(f, 'g', -1, 64), rdf.XSDDouble)
}

func numericValue(t rdf.Term) (float64, bool) {
	if t.Kind != rdf.KindLiteral {
		return 0, false
	}
	switch t.Datatype {
	case rdf.XSDInteger, rdf.XSDDecimal, rdf.XSDDouble:
		f, err := strconv.ParseFloat(t.Value, 64)
		return f, err == nil
	case "":
		// Plain literals that look numeric are allowed in comparisons;
		// reject here to stay close to the spec.
		return 0, false
	default:
		return 0, false
	}
}

func isIntegerTerm(t rdf.Term) bool {
	return t.Kind == rdf.KindLiteral && t.Datatype == rdf.XSDInteger
}

// termsEqual implements SPARQL '=' semantics: numeric comparison for
// numeric literals, otherwise RDF term equality (with a type error for
// incomparable literal pairs we treat as plain inequality).
func termsEqual(l, r rdf.Term) (bool, error) {
	if lf, lok := numericValue(l); lok {
		if rf, rok := numericValue(r); rok {
			return lf == rf, nil
		}
	}
	return l == r, nil
}

// compareTerms implements <,> comparisons: numeric when both numeric,
// string comparison when both are plain/string literals; otherwise a
// type error.
func compareTerms(l, r rdf.Term) (int, error) {
	if lf, lok := numericValue(l); lok {
		if rf, rok := numericValue(r); rok {
			switch {
			case lf < rf:
				return -1, nil
			case lf > rf:
				return 1, nil
			default:
				return 0, nil
			}
		}
		return 0, ErrExprType
	}
	if l.Kind == rdf.KindLiteral && r.Kind == rdf.KindLiteral &&
		(l.Datatype == "" || l.Datatype == rdf.XSDString) &&
		(r.Datatype == "" || r.Datatype == rdf.XSDString) {
		return strings.Compare(l.Value, r.Value), nil
	}
	return 0, ErrExprType
}
