package sparql

import (
	"io"
	"strings"
	"testing"
	"unsafe"

	"lusail/internal/rdf"
)

// A fixture exercising every term shape the SPARQL 1.1 JSON format
// defines: IRIs, plain / typed / language-tagged literals, bnodes,
// and unbound cells.
const streamFixture = `{
  "head": { "vars": ["s", "o", "extra"] },
  "results": { "bindings": [
    { "s": {"type": "uri", "value": "http://ex/1"},
      "o": {"type": "literal", "value": "plain"} },
    { "s": {"type": "uri", "value": "http://ex/2"},
      "o": {"type": "literal", "value": "salut", "xml:lang": "fr"} },
    { "s": {"type": "bnode", "value": "b0"},
      "o": {"type": "literal", "value": "42",
            "datatype": "http://www.w3.org/2001/XMLSchema#integer"} },
    { "s": {"type": "uri", "value": "http://ex/3"} }
  ] }
}`

func TestStreamDecodeConformance(t *testing.T) {
	r, err := DecodeJSONStream(strings.NewReader(streamFixture))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Vars) != 3 || r.Vars[0] != "s" || r.Vars[1] != "o" || r.Vars[2] != "extra" {
		t.Fatalf("vars = %v", r.Vars)
	}
	want := []Binding{
		{"s": rdf.IRI("http://ex/1"), "o": rdf.Literal("plain")},
		{"s": rdf.IRI("http://ex/2"), "o": rdf.LangLiteral("salut", "fr")},
		{"s": rdf.Blank("b0"), "o": rdf.Integer(42)},
		{"s": rdf.IRI("http://ex/3")},
	}
	if len(r.Rows) != len(want) {
		t.Fatalf("rows = %d, want %d", len(r.Rows), len(want))
	}
	for i := range want {
		if len(r.Rows[i]) != len(want[i]) {
			t.Errorf("row %d = %v, want %v", i, r.Rows[i], want[i])
			continue
		}
		for v, tm := range want[i] {
			if r.Rows[i][v] != tm {
				t.Errorf("row %d var %s = %v, want %v", i, v, r.Rows[i][v], tm)
			}
		}
	}
}

func TestStreamDecodeMemberOrderAndUnknownMembers(t *testing.T) {
	// "results" before "head", plus unknown members at every level
	// (some stores emit "link", Virtuoso emits vendor extensions).
	in := `{
	  "link": ["http://ex/meta"],
	  "results": { "distinct": false, "bindings": [
	    { "x": {"type": "uri", "value": "http://ex/a", "vendor": {"deep": [1,2,{"n":3}]}} }
	  ], "ordered": true },
	  "head": { "link": [], "vars": ["x"] },
	  "vendor-extension": {"a": [true, null, 1.5]}
	}`
	r, err := DecodeJSONStream(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Vars) != 1 || r.Vars[0] != "x" {
		t.Fatalf("vars = %v", r.Vars)
	}
	if len(r.Rows) != 1 || r.Rows[0]["x"] != rdf.IRI("http://ex/a") {
		t.Fatalf("rows = %v", r.Rows)
	}
}

func TestStreamDecodeVirtuosoTypedLiteral(t *testing.T) {
	in := `{"head":{"vars":["x"]},"results":{"bindings":[{"x":{"type":"typed-literal","datatype":"http://www.w3.org/2001/XMLSchema#integer","value":"5"}}]}}`
	r, err := DecodeJSONStream(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if r.Rows[0]["x"] != rdf.Integer(5) {
		t.Errorf("term = %v", r.Rows[0]["x"])
	}
}

func TestStreamDecodeAsk(t *testing.T) {
	for in, want := range map[string]bool{
		`{"head":{},"boolean":true}`:            true,
		`{"boolean":false,"head":{"vars":[]}}`:  false,
		`{"head":{"vars":null},"boolean":true}`: true,
	} {
		r, err := DecodeJSONStream(strings.NewReader(in))
		if err != nil {
			t.Fatalf("%s: %v", in, err)
		}
		if !r.AskForm || r.Ask != want {
			t.Errorf("%s: AskForm=%v Ask=%v, want Ask=%v", in, r.AskForm, r.Ask, want)
		}
	}
}

func TestStreamDecodeTruncation(t *testing.T) {
	// Cutting the fixture anywhere must produce an error, never a
	// silently partial result. Skip prefixes that happen to end right
	// after the closing brace (those are complete documents).
	full := strings.TrimSpace(streamFixture)
	for cut := 0; cut < len(full); cut++ {
		_, err := DecodeJSONStream(strings.NewReader(full[:cut]))
		if err == nil {
			t.Fatalf("truncation at byte %d accepted:\n%s", cut, full[:cut])
		}
	}
	// The canonical truncation error for a clean mid-stream cut.
	_, err := DecodeJSONStream(strings.NewReader(`{"head":{"vars":["x"]},"results":{"bindings":[`))
	if err == nil || !strings.Contains(err.Error(), io.ErrUnexpectedEOF.Error()) {
		t.Errorf("mid-array truncation error = %v, want unexpected EOF", err)
	}
}

func TestStreamDecodeMalformed(t *testing.T) {
	for _, in := range []string{
		`[]`,                            // not an object
		`{"boolean":"yes"}`,             // boolean member not a bool
		`{"head":{"vars":[42]}}`,        // non-string var
		`{"results":{"bindings":[42]}}`, // binding not an object
		`{"results":{"bindings":[{"x":{"type":"martian","value":"v"}}]}}`, // unknown term type
		`{"results":{"bindings":[{"x":{"type":"uri","value":42}}]}}`,      // non-string value
	} {
		if _, err := DecodeJSONStream(strings.NewReader(in)); err == nil {
			t.Errorf("malformed input accepted: %s", in)
		}
	}
}

func TestStreamDecodeInternsRepeatedTerms(t *testing.T) {
	// The same IRI in different rows must share one string allocation:
	// both values' string headers point at the same bytes.
	in := `{"head":{"vars":["x"]},"results":{"bindings":[
	  {"x":{"type":"uri","value":"http://ex/shared"}},
	  {"x":{"type":"uri","value":"http://ex/shared"}}
	]}}`
	r, err := DecodeJSONStream(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	a, b := r.Rows[0]["x"].Value, r.Rows[1]["x"].Value
	if a != b {
		t.Fatalf("values differ: %q vs %q", a, b)
	}
	if unsafe.StringData(a) != unsafe.StringData(b) {
		t.Error("repeated IRI not interned: values have distinct backing arrays")
	}
}

func TestStreamDecodeEmptyAndHeadOnly(t *testing.T) {
	r, err := DecodeJSONStream(strings.NewReader(`{"head":{"vars":["x"]}}`))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Vars) != 1 || r.Rows != nil || r.AskForm {
		t.Errorf("head-only decode = %+v", r)
	}
	r, err = DecodeJSONStream(strings.NewReader(`{"head":{"vars":["x"]},"results":{"bindings":[]}}`))
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 0 {
		t.Errorf("empty bindings decode = %+v", r)
	}
}
