package sparql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind uint8

const (
	tokEOF tokenKind = iota
	tokKeyword
	tokVar     // ?x or $x (value without sigil)
	tokIRI     // <...> (value without brackets)
	tokPName   // prefixed name like ub:advisor or the 'a' keyword handled as keyword
	tokLiteral // "..." with optional @lang / ^^<dt>, held as a parsed term via lexer.lit
	tokNumber
	tokPunct // {, }, (, ), ., ;, ,, operators
)

type token struct {
	kind tokenKind
	text string // keyword upper-cased; punct verbatim
	// literal parts
	litVal  string
	litLang string
	litDT   string
	pos     int
}

var keywords = map[string]bool{
	"SELECT": true, "ASK": true, "WHERE": true, "FILTER": true,
	"OPTIONAL": true, "UNION": true, "LIMIT": true, "OFFSET": true,
	"DISTINCT": true, "ORDER": true, "BY": true, "ASC": true, "DESC": true,
	"PREFIX": true, "VALUES": true, "NOT": true, "EXISTS": true,
	"COUNT": true, "AS": true, "UNDEF": true, "TRUE": true, "FALSE": true,
	"BOUND": true, "REGEX": true, "STR": true, "LANG": true, "DATATYPE": true,
	"CONTAINS": true, "STRSTARTS": true, "STRENDS": true, "STRLEN": true,
	"LCASE": true, "UCASE": true, "ISIRI": true, "ISURI": true,
	"ISLITERAL": true, "ISBLANK": true, "A": true, "BASE": true,
}

type lexer struct {
	in   string
	pos  int
	toks []token
}

func lex(input string) ([]token, error) {
	l := &lexer{in: input}
	for {
		l.skipSpaceAndComments()
		if l.pos >= len(l.in) {
			l.emit(token{kind: tokEOF, pos: l.pos})
			return l.toks, nil
		}
		if err := l.next(); err != nil {
			return nil, err
		}
	}
}

func (l *lexer) emit(t token) { l.toks = append(l.toks, t) }

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.in) {
		c := l.in[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		if c == '#' {
			for l.pos < len(l.in) && l.in[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		break
	}
}

func (l *lexer) errf(format string, args ...any) error {
	return fmt.Errorf("sparql: lex error at offset %d: %s", l.pos, fmt.Sprintf(format, args...))
}

func (l *lexer) next() error {
	start := l.pos
	c := l.in[l.pos]
	switch {
	case c == '?' || c == '$':
		l.pos++
		s := l.pos
		for l.pos < len(l.in) && isNameChar(l.in[l.pos]) {
			l.pos++
		}
		if l.pos == s {
			return l.errf("empty variable name")
		}
		l.emit(token{kind: tokVar, text: l.in[s:l.pos], pos: start})
		return nil
	case c == '<':
		// IRI if a '>' appears before any whitespace; otherwise the
		// '<' / '<=' comparison operator.
		rest := l.in[l.pos+1:]
		end := strings.IndexByte(rest, '>')
		sp := strings.IndexAny(rest, " \t\n\r")
		if end >= 0 && (sp < 0 || end < sp) {
			l.emit(token{kind: tokIRI, text: rest[:end], pos: start})
			l.pos += end + 2
			return nil
		}
		if strings.HasPrefix(rest, "=") {
			l.emit(token{kind: tokPunct, text: "<=", pos: start})
			l.pos += 2
			return nil
		}
		l.emit(token{kind: tokPunct, text: "<", pos: start})
		l.pos++
		return nil
	case c == '"' || c == '\'':
		return l.literal(c)
	case c >= '0' && c <= '9' || (c == '-' || c == '+') && l.pos+1 < len(l.in) && l.in[l.pos+1] >= '0' && l.in[l.pos+1] <= '9':
		s := l.pos
		l.pos++
		seenDot := false
		for l.pos < len(l.in) {
			d := l.in[l.pos]
			if d >= '0' && d <= '9' {
				l.pos++
				continue
			}
			if d == '.' && !seenDot && l.pos+1 < len(l.in) && l.in[l.pos+1] >= '0' && l.in[l.pos+1] <= '9' {
				seenDot = true
				l.pos++
				continue
			}
			break
		}
		l.emit(token{kind: tokNumber, text: l.in[s:l.pos], pos: start})
		return nil
	case c == '_' && l.pos+1 < len(l.in) && l.in[l.pos+1] == ':':
		// Blank node label; treated as a pname with empty prefix "_".
		l.pos += 2
		s := l.pos
		for l.pos < len(l.in) && isNameChar(l.in[l.pos]) {
			l.pos++
		}
		if l.pos == s {
			return l.errf("empty blank node label")
		}
		l.emit(token{kind: tokPName, text: "_:" + l.in[s:l.pos], pos: start})
		return nil
	case isNameStart(c):
		s := l.pos
		for l.pos < len(l.in) && (isNameChar(l.in[l.pos])) {
			l.pos++
		}
		word := l.in[s:l.pos]
		// Prefixed name: word ':' localname (no space allowed).
		if l.pos < len(l.in) && l.in[l.pos] == ':' {
			l.pos++
			ls := l.pos
			for l.pos < len(l.in) && (isNameChar(l.in[l.pos]) || l.in[l.pos] == '.' && l.pos+1 < len(l.in) && isNameChar(l.in[l.pos+1])) {
				l.pos++
			}
			l.emit(token{kind: tokPName, text: word + ":" + l.in[ls:l.pos], pos: start})
			return nil
		}
		up := strings.ToUpper(word)
		if keywords[up] {
			l.emit(token{kind: tokKeyword, text: up, pos: start})
			return nil
		}
		return l.errf("unexpected identifier %q", word)
	case c == ':':
		// Prefixed name with the empty prefix.
		l.pos++
		ls := l.pos
		for l.pos < len(l.in) && isNameChar(l.in[l.pos]) {
			l.pos++
		}
		l.emit(token{kind: tokPName, text: ":" + l.in[ls:l.pos], pos: start})
		return nil
	default:
		for _, op := range []string{"&&", "||", "!=", ">=", "<=", "^^"} {
			if strings.HasPrefix(l.in[l.pos:], op) {
				l.emit(token{kind: tokPunct, text: op, pos: start})
				l.pos += 2
				return nil
			}
		}
		switch c {
		case '{', '}', '(', ')', '.', ';', ',', '=', '>', '!', '+', '-', '*', '/', '@':
			l.emit(token{kind: tokPunct, text: string(c), pos: start})
			l.pos++
			return nil
		}
		return l.errf("unexpected character %q", c)
	}
}

func (l *lexer) literal(quote byte) error {
	start := l.pos
	l.pos++
	var b strings.Builder
	for l.pos < len(l.in) {
		c := l.in[l.pos]
		if c == '\\' {
			if l.pos+1 >= len(l.in) {
				return l.errf("dangling escape in literal")
			}
			l.pos++
			switch l.in[l.pos] {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '"':
				b.WriteByte('"')
			case '\'':
				b.WriteByte('\'')
			case '\\':
				b.WriteByte('\\')
			default:
				return l.errf("unknown escape \\%c", l.in[l.pos])
			}
			l.pos++
			continue
		}
		if c == quote {
			break
		}
		b.WriteByte(c)
		l.pos++
	}
	if l.pos >= len(l.in) {
		return l.errf("unterminated literal")
	}
	l.pos++
	tok := token{kind: tokLiteral, litVal: b.String(), pos: start}
	// Language tag.
	if l.pos < len(l.in) && l.in[l.pos] == '@' {
		l.pos++
		s := l.pos
		for l.pos < len(l.in) && (isAlnumByte(l.in[l.pos]) || l.in[l.pos] == '-') {
			l.pos++
		}
		if l.pos == s {
			return l.errf("empty language tag")
		}
		tok.litLang = l.in[s:l.pos]
	} else if strings.HasPrefix(l.in[l.pos:], "^^") {
		l.pos += 2
		if l.pos >= len(l.in) || l.in[l.pos] != '<' {
			// Allow prefixed-name datatypes by scanning a pname.
			s := l.pos
			for l.pos < len(l.in) && (isNameChar(l.in[l.pos]) || l.in[l.pos] == ':') {
				l.pos++
			}
			if l.pos == s {
				return l.errf("missing datatype after ^^")
			}
			tok.litDT = "pname:" + l.in[s:l.pos]
		} else {
			end := strings.IndexByte(l.in[l.pos:], '>')
			if end < 0 {
				return l.errf("unterminated datatype IRI")
			}
			tok.litDT = l.in[l.pos+1 : l.pos+end]
			l.pos += end + 1
		}
	}
	l.emit(tok)
	return nil
}

func isNameStart(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_' || c >= 0x80
}

func isNameChar(c byte) bool {
	return isNameStart(c) || c >= '0' && c <= '9' || c == '-'
}

func isAlnumByte(c byte) bool {
	return unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}
