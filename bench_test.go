package lusail

// Benchmarks mirroring the paper's evaluation: one benchmark family
// per table/figure (see EXPERIMENTS.md for the mapping). Run with:
//
//	go test -bench=. -benchmem
//
// Absolute numbers depend on the machine; the shapes to look for are
// the ones the paper reports — e.g. BenchmarkFig12 shows Lusail
// beating FedX by orders of magnitude on LUBM Q1/Q2/Q4, and
// BenchmarkFig3 shows FedX cost growing superlinearly with the
// endpoint count.

import (
	"context"
	"fmt"
	"testing"
	"time"

	"lusail/internal/benchdata/bio"
	"lusail/internal/benchdata/largerdf"
	"lusail/internal/benchdata/lubm"
	"lusail/internal/benchdata/qfed"
	"lusail/internal/core"
	"lusail/internal/endpoint"
	"lusail/internal/experiments"
	"lusail/internal/federation"
)

func benchOpts() experiments.Options {
	return experiments.Options{Scale: 1, Timeout: 5 * time.Minute, Runs: 1}
}

// benchEngine builds the engine once, warms caches once, then times
// repeated executions.
func benchEngine(b *testing.B, engineName string, f *experiments.Federation, query string) {
	b.Helper()
	eng, err := experiments.BuildEngine(engineName, f)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, err := eng.Execute(ctx, query); err != nil {
		b.Fatalf("warm-up: %v", err)
	}
	endpoint.ResetAll(f.Endpoints)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Execute(ctx, query); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := endpoint.TotalStats(f.Endpoints)
	b.ReportMetric(float64(st.Requests)/float64(b.N), "requests/op")
	b.ReportMetric(float64(st.Rows)/float64(b.N), "rows-shipped/op")
}

// BenchmarkTable1 measures the dataset generators (Table I).
func BenchmarkTable1_Generators(b *testing.B) {
	b.Run("LUBM-4univ", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			lubm.Generate(lubm.DefaultConfig(4))
		}
	})
	b.Run("QFed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			qfed.Generate(qfed.DefaultConfig())
		}
	})
	b.Run("LargeRDFBench", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			largerdf.Generate(largerdf.DefaultConfig())
		}
	})
}

// BenchmarkPreprocessing measures SPLENDID's index build (§VI-A);
// Lusail and FedX need none.
func BenchmarkPreprocessing_SplendidIndex(b *testing.B) {
	f := experiments.LargeRDF(benchOpts())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.BuildEngine("splendid", f); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig3 sweeps FedX over growing LUBM federations; the
// requests/op metric reproduces the figure's request curve.
func BenchmarkFig3_FedX_LUBMQ2(b *testing.B) {
	for _, n := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("endpoints-%d", n), func(b *testing.B) {
			benchEngine(b, "fedx", experiments.LUBM(n, benchOpts()), lubm.Q2)
		})
	}
}

// BenchmarkFig9 sweeps the delayed-subquery threshold policies over
// one representative query per LargeRDFBench category.
func BenchmarkFig9_DelayPolicies(b *testing.B) {
	f := experiments.LargeRDF(benchOpts())
	queries := map[string]string{
		"S13": largerdf.SimpleQueries["S13"],
		"C7":  largerdf.ComplexQueries["C7"],
		"B1":  largerdf.LargeQueries["B1"],
	}
	for _, pol := range []core.DelayPolicy{core.DelayMu, core.DelayMuSigma, core.DelayMu2Sigma, core.DelayOutliersOnly} {
		for _, qname := range []string{"S13", "C7", "B1"} {
			b.Run(pol.String()+"/"+qname, func(b *testing.B) {
				eng := core.New(f.Endpoints, core.Config{DelayPolicy: pol})
				benchLusail(b, eng, f, queries[qname])
			})
		}
	}
}

func benchLusail(b *testing.B, eng federation.Engine, f *experiments.Federation, query string) {
	b.Helper()
	ctx := context.Background()
	if _, err := eng.Execute(ctx, query); err != nil {
		b.Fatalf("warm-up: %v", err)
	}
	endpoint.ResetAll(f.Endpoints)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Execute(ctx, query); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st := endpoint.TotalStats(f.Endpoints)
	b.ReportMetric(float64(st.Requests)/float64(b.N), "requests/op")
}

// BenchmarkFig10a profiles Lusail's phases on S10, C4, B1.
func BenchmarkFig10a_Profile(b *testing.B) {
	f := experiments.LargeRDF(benchOpts())
	queries := map[string]string{
		"S10": largerdf.SimpleQueries["S10"],
		"C4":  largerdf.ComplexQueries["C4"],
		"B1":  largerdf.LargeQueries["B1"],
	}
	for _, qname := range []string{"S10", "C4", "B1"} {
		b.Run(qname, func(b *testing.B) {
			eng := core.New(f.Endpoints, core.Config{})
			benchLusail(b, eng, f, queries[qname])
		})
	}
}

// BenchmarkFig10bc scales the LUBM federation for Q3/Q4, with cached
// and cold analysis.
func BenchmarkFig10bc_LUBMScale(b *testing.B) {
	for _, n := range []int{4, 16, 64} {
		f := experiments.LUBM(n, benchOpts())
		for _, qname := range []string{"Q3", "Q4"} {
			b.Run(fmt.Sprintf("%s/endpoints-%d/cached", qname, n), func(b *testing.B) {
				eng := core.New(f.Endpoints, core.Config{})
				benchLusail(b, eng, f, lubm.Queries[qname])
			})
			b.Run(fmt.Sprintf("%s/endpoints-%d/no-cache", qname, n), func(b *testing.B) {
				eng := core.New(f.Endpoints, core.Config{DisableCache: true})
				benchLusail(b, eng, f, lubm.Queries[qname])
			})
		}
	}
}

// BenchmarkFig11 compares all engines on representative QFed queries
// (base, big-literal, and the most decorated variant).
func BenchmarkFig11_QFed(b *testing.B) {
	f := experiments.QFed(benchOpts())
	for _, ename := range experiments.EngineNames {
		for _, qname := range []string{"C2P2", "C2P2B", "C2P2BOF", "Drug"} {
			b.Run(ename+"/"+qname, func(b *testing.B) {
				benchEngine(b, ename, f, qfed.Queries[qname])
			})
		}
	}
}

// BenchmarkFig12 compares all engines on LUBM Q1-Q4 over 2 and 4
// endpoints.
func BenchmarkFig12_LUBM(b *testing.B) {
	for _, n := range []int{2, 4} {
		f := experiments.LUBM(n, benchOpts())
		for _, ename := range experiments.EngineNames {
			for _, qname := range []string{"Q1", "Q2", "Q3", "Q4"} {
				b.Run(fmt.Sprintf("%s/%s/endpoints-%d", ename, qname, n), func(b *testing.B) {
					benchEngine(b, ename, f, lubm.Queries[qname])
				})
			}
		}
	}
}

// BenchmarkFig13 compares all engines on one representative
// LargeRDFBench query per category (B8 through FedX runs tens of
// seconds per op; the full sweep lives in cmd/lusail-bench -exp fig13).
func BenchmarkFig13_LargeRDF(b *testing.B) {
	f := experiments.LargeRDF(benchOpts())
	queries := map[string]string{
		"S10": largerdf.SimpleQueries["S10"],
		"C9":  largerdf.ComplexQueries["C9"],
		"B2":  largerdf.LargeQueries["B2"],
	}
	for _, ename := range experiments.EngineNames {
		for _, qname := range []string{"S10", "C9", "B2"} {
			b.Run(ename+"/"+qname, func(b *testing.B) {
				benchEngine(b, ename, f, queries[qname])
			})
		}
	}
}

// BenchmarkFig14 adds simulated WAN latency; requests dominate, so the
// request-heavy engines degrade disproportionately. A scaled-down RTT
// keeps iterations fast while preserving the shape.
func BenchmarkFig14_WAN(b *testing.B) {
	opts := benchOpts()
	opts.Network = endpoint.NetworkProfile{RTT: 2 * time.Millisecond, BytesPerSecond: 50_000_000}
	f := experiments.LargeRDF(opts)
	for _, ename := range []string{"lusail", "fedx"} {
		for _, qname := range []string{"C9", "B2"} {
			query := largerdf.ComplexQueries[qname]
			if query == "" {
				query = largerdf.LargeQueries[qname]
			}
			b.Run(ename+"/"+qname, func(b *testing.B) {
				benchEngine(b, ename, f, query)
			})
		}
	}
}

// BenchmarkBio runs the Bio2RDF-shaped R queries (§VI-D).
func BenchmarkBio_R123(b *testing.B) {
	f := experiments.Bio(benchOpts())
	for _, qname := range []string{"R1", "R2", "R3"} {
		b.Run(qname, func(b *testing.B) {
			eng := core.New(f.Endpoints, core.Config{})
			benchLusail(b, eng, f, bio.Queries[qname])
		})
	}
}

// BenchmarkAblationLADE isolates locality-aware decomposition: the
// same engine with check queries disabled degenerates to one pattern
// per subquery.
func BenchmarkAblationLADE(b *testing.B) {
	f := experiments.LUBM(4, benchOpts())
	for _, mode := range []string{"lusail", "lusail-ablade"} {
		b.Run(mode+"/Q2", func(b *testing.B) {
			benchEngine(b, mode, f, lubm.Q2)
		})
	}
}

// BenchmarkAblationSAPE isolates the delay heuristic against
// fully-concurrent and fully-bound execution.
func BenchmarkAblationSAPE(b *testing.B) {
	f := experiments.LargeRDF(benchOpts())
	for _, pol := range []core.DelayPolicy{core.DelayMuSigma, core.DelayNone, core.DelayAll} {
		b.Run(pol.String()+"/C7", func(b *testing.B) {
			eng := core.New(f.Endpoints, core.Config{DelayPolicy: pol})
			benchLusail(b, eng, f, largerdf.ComplexQueries["C7"])
		})
	}
}
