GO ?= go

.PHONY: all build vet test race verify lint fmt-check bench bench-all bench-compare bench-baseline trace-smoke server-smoke degrade-smoke stream-smoke workload-smoke chaos-smoke stats-smoke fuzz-short

# Packages with microbenchmarks, gated by bench-compare.
BENCH_PKGS = ./internal/core/ ./internal/sparql/ ./internal/engine/ ./internal/store/
BENCH_ARGS = -run NONE -bench . -benchmem -benchtime 300ms

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the concurrency-heavy packages: the elastic request
# handler, the executor's fail-fast paths, the resilient decorator,
# the metrics registry, and the server daemon.
race:
	$(GO) test -race ./internal/federation/... ./internal/core/... ./internal/endpoint/... ./internal/obs/... ./internal/stats/... ./cmd/lusail-server/...

verify: build vet test race

# Formatting gate: fail when any file needs gofmt.
fmt-check:
	@unformatted=$$(gofmt -l .); \
	if [ -n "$$unformatted" ]; then \
	  echo "gofmt needed on:"; echo "$$unformatted"; exit 1; \
	fi; \
	echo "gofmt OK"

# Static analysis beyond go vet. staticcheck and govulncheck are
# optional locally (skipped with a notice when not installed); CI
# installs and runs both unconditionally.
lint: vet fmt-check
	@if command -v staticcheck >/dev/null 2>&1; then \
	  staticcheck ./...; \
	else \
	  echo "staticcheck not installed; skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi
	@if command -v govulncheck >/dev/null 2>&1; then \
	  govulncheck ./...; \
	else \
	  echo "govulncheck not installed; skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

# Per-query latency percentiles on the LUBM federation, as JSON.
bench:
	$(GO) run ./cmd/lusail-bench -bench-json BENCH_PR6.json -runs 5

# Microbenchmark regression gate: fail when any benchmark's ns/op or
# allocs/op exceeds 2x the committed baseline. CI runs this with
# -skip-time (allocs/op is deterministic; wall clock on shared runners
# is not).
bench-compare:
	$(GO) test $(BENCH_PKGS) $(BENCH_ARGS) | $(GO) run ./cmd/lusail-benchcmp -baseline BENCH_ALLOC_BASELINE.json

# Rewrite the committed microbenchmark baseline from a fresh run.
bench-baseline:
	$(GO) test $(BENCH_PKGS) $(BENCH_ARGS) | $(GO) run ./cmd/lusail-benchcmp -baseline BENCH_ALLOC_BASELINE.json -update

# Regenerate every paper figure/table.
bench-all:
	$(GO) run ./cmd/lusail-bench -exp all

# Sanity-check the tracing path end to end: the span tree must render
# the phase-1 and EXPLAIN ANALYZE sections for the LUBM queries.
trace-smoke:
	@out=$$($(GO) run ./cmd/lusail-bench -trace); \
	echo "$$out" | grep -q "phase1" && \
	echo "$$out" | grep -q "EXPLAIN ANALYZE" && \
	echo "trace smoke OK"

# Streaming-execution smoke test: race-check the pipelined executor,
# the symmetric hash join, and the server's chunked JSON path —
# streamed-vs-materialized equivalence, concurrent producers,
# client-disconnect cancellation.
stream-smoke:
	$(GO) test -race -count=1 -run 'Stream|SymmetricJoin' ./internal/core/ ./internal/engine/ ./internal/sparql/ ./cmd/lusail-server/
	@echo "stream smoke OK"

# Graceful-degradation smoke test: run the availability sweep and
# assert that skip-endpoint/best-effort return the surviving-partition
# answer against a hard-down endpoint while the fail policy errors.
degrade-smoke:
	@out=$$($(GO) run ./cmd/lusail-bench -exp degrade); \
	echo "$$out" | grep -qE "fail +ERR" && \
	echo "$$out" | grep -qE "best-effort +ok" && \
	echo "$$out" | grep -q "scenario B" && \
	echo "degrade smoke OK"

# Cross-query reuse smoke test: replay the Zipf workload with the
# subquery cache off and on; the cached pass must report a non-zero
# hit rate and zero plan-time endpoint requests on repeats.
workload-smoke:
	@out=$$($(GO) run ./cmd/lusail-bench -exp workload); \
	echo "$$out" | grep -qE "^on .* [1-9][0-9]*%$$" || \
	  { echo "workload smoke FAILED: no cache hits"; echo "$$out"; exit 1; }; \
	echo "$$out" | grep -E "^(off|on) " | awk '$$6 != 0 { bad=1 } END { exit bad }' || \
	  { echo "workload smoke FAILED: plan-time requests on repeats"; echo "$$out"; exit 1; }; \
	echo "workload smoke OK"

# Chaos soak: a seeded 200-query schedule of data churn composed with
# fault injection, run under the race detector. The enforcing pass
# must serve zero stale rows against a fresh no-cache oracle at the
# same data version; the observe-only control pass must detect
# staleness with the same check (proving the oracle has teeth).
chaos-smoke:
	@out=$$($(GO) run -race ./cmd/lusail-bench -exp chaos) || \
	  { echo "chaos smoke FAILED"; echo "$$out"; exit 1; }; \
	echo "$$out" | grep -q "chaos enforce verdict: PASS — stale rows: 0" || \
	  { echo "chaos smoke FAILED: enforce verdict missing"; echo "$$out"; exit 1; }; \
	echo "$$out" | grep -q "chaos observe verdict: PASS" || \
	  { echo "chaos smoke FAILED: observe control missing"; echo "$$out"; exit 1; }; \
	echo "chaos smoke OK"

# Statistics smoke: run the offline-statistics replay under the race
# detector. The warm pass with harvested summaries must plan with zero
# endpoint probes, and calibration must strictly lower the median
# estimate q-error over the raw summaries.
stats-smoke:
	@out=$$($(GO) run -race ./cmd/lusail-bench -exp stats) || \
	  { echo "stats smoke FAILED"; echo "$$out"; exit 1; }; \
	echo "$$out" | grep -q "stats verdict: PASS — warm-pass plan requests: 0" || \
	  { echo "stats smoke FAILED: warm-pass verdict missing"; echo "$$out"; exit 1; }; \
	echo "$$out" | grep -q "calibration verdict: PASS" || \
	  { echo "stats smoke FAILED: calibration verdict missing"; echo "$$out"; exit 1; }; \
	echo "stats smoke OK"

# Short native-fuzz pass over the SPARQL parser (seed corpus plus a
# few seconds of mutation); CI runs this on every push.
fuzz-short:
	$(GO) test ./internal/sparql -run FuzzParse -fuzz FuzzParse -fuzztime 10s
	@echo "fuzz short OK"

# End-to-end daemon smoke test: boot lusail-server over two local
# N-Triples endpoints, wait for /readyz, run one federated query over
# the SPARQL protocol, scrape /metrics, and assert the query counter
# incremented.
server-smoke:
	@set -e; \
	tmp=$$(mktemp -d); trap 'kill $$srv 2>/dev/null; rm -rf $$tmp' EXIT; \
	$(GO) build -o $$tmp/lusail-server ./cmd/lusail-server; \
	printf '<http://ex/s1> <http://ex/p> "a" .\n' > $$tmp/a.nt; \
	printf '<http://ex/s2> <http://ex/q> "b" .\n' > $$tmp/b.nt; \
	$$tmp/lusail-server -addr 127.0.0.1:18080 \
	  -endpoint $$tmp/a.nt -endpoint $$tmp/b.nt 2> $$tmp/server.log & srv=$$!; \
	for i in $$(seq 1 50); do \
	  code=$$(curl -s -o /dev/null -w '%{http_code}' http://127.0.0.1:18080/readyz || true); \
	  [ "$$code" = 200 ] && break; sleep 0.1; \
	done; \
	[ "$$code" = 200 ] || { echo "server never became ready"; cat $$tmp/server.log; exit 1; }; \
	curl -sf 'http://127.0.0.1:18080/sparql' \
	  --data-urlencode 'query=SELECT ?s WHERE { ?s ?p ?o }' | grep -q 'http://ex/s' || \
	  { echo "query failed"; cat $$tmp/server.log; exit 1; }; \
	curl -sf http://127.0.0.1:18080/metrics | grep -q '^lusail_queries_total 1$$' || \
	  { echo "lusail_queries_total did not increment"; exit 1; }; \
	echo "server smoke OK"
