GO ?= go

.PHONY: all build vet test race verify bench

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the concurrency-heavy packages: the elastic request
# handler, the executor's fail-fast paths, and the resilient decorator.
race:
	$(GO) test -race ./internal/federation/... ./internal/core/... ./internal/endpoint/...

verify: build vet test race

bench:
	$(GO) run ./cmd/lusail-bench -exp all
