GO ?= go

.PHONY: all build vet test race verify bench bench-all trace-smoke

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-check the concurrency-heavy packages: the elastic request
# handler, the executor's fail-fast paths, and the resilient decorator.
race:
	$(GO) test -race ./internal/federation/... ./internal/core/... ./internal/endpoint/...

verify: build vet test race

# Per-query latency percentiles on the LUBM federation, as JSON.
bench:
	$(GO) run ./cmd/lusail-bench -bench-json BENCH_PR2.json -runs 5

# Regenerate every paper figure/table.
bench-all:
	$(GO) run ./cmd/lusail-bench -exp all

# Sanity-check the tracing path end to end: the span tree must render
# the phase-1 and EXPLAIN ANALYZE sections for the LUBM queries.
trace-smoke:
	@out=$$($(GO) run ./cmd/lusail-bench -trace); \
	echo "$$out" | grep -q "phase1" && \
	echo "$$out" | grep -q "EXPLAIN ANALYZE" && \
	echo "trace smoke OK"
