// Command endpoint serves an N-Triples file as a SPARQL endpoint over
// HTTP (query via GET ?query= or POST, results as SPARQL JSON/XML/CSV/TSV):
//
//	endpoint -data university0.nt -addr :8001 -name univ0
//
// A federation of such processes is queryable with cmd/lusail or
// cmd/lusail-server. With -metrics the process also exposes its
// cumulative traffic counters (requests, rows, bytes, latency
// histogram) in Prometheus text format at /metrics. Access logs go to
// stderr via log/slog; SIGINT/SIGTERM drain in-flight requests before
// exit.
package main

import (
	"context"
	"flag"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lusail"
	"lusail/internal/endpoint"
	"lusail/internal/obs"
)

func main() {
	var (
		data    = flag.String("data", "", "N-Triples file to serve (required)")
		addr    = flag.String("addr", ":8001", "listen address")
		name    = flag.String("name", "endpoint", "endpoint name")
		metrics = flag.Bool("metrics", false, "expose Prometheus metrics at /metrics")
		drain   = flag.Duration("drain", 10*time.Second, "graceful-shutdown drain budget")
		maxReq  = flag.Int64("max-request-bytes", 0, "cap on POST request bodies; oversized requests get 413 (0 = default 4MiB, negative = unlimited)")
		otlp    = flag.String("otlp-endpoint", "", "OTLP/HTTP collector base URL for server-side span export (empty disables)")
	)
	flag.Parse()
	logger := slog.New(slog.NewTextHandler(os.Stderr, nil))
	if *data == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*data)
	if err != nil {
		logger.Error("open data file", "path", *data, "err", err)
		os.Exit(1)
	}
	ep, err := lusail.LoadEndpoint(*name, f)
	f.Close()
	if err != nil {
		logger.Error("load data file", "path", *data, "err", err)
		os.Exit(1)
	}

	mux := http.NewServeMux()
	// The store-level counters (requests, rows, bytes) come from the
	// endpoint itself; request latency is observed at the HTTP layer,
	// where the access log already times each request.
	var reqDur *obs.Histogram
	if *metrics {
		reg := obs.NewRegistry()
		obs.RegisterEndpointStats(reg, func() []endpoint.EndpointStat {
			return endpoint.PerEndpointStats([]endpoint.Endpoint{ep})
		})
		reqDur = reg.Histogram("endpoint_http_request_duration_seconds",
			"HTTP request latency as served by this endpoint process.", nil)
		mux.Handle("/metrics", reg.Handler())
	}
	// With -otlp-endpoint, every served query records a server-kind span
	// joined to the federator's trace (inbound traceparent), so the
	// collector stitches one distributed trace per federated query.
	var exporter *obs.SpanExporter
	hcfg := endpoint.HandlerConfig{
		Logger:          logger,
		MaxRequestBytes: *maxReq,
		ServiceName:     *name,
	}
	if *otlp != "" {
		exporter = obs.NewSpanExporter(obs.ExporterConfig{
			Endpoint: *otlp,
			Service:  *name,
			Logger:   logger,
		})
		hcfg.TraceSink = exporter
	}
	mux.Handle("/", accessLog(logger, reqDur, endpoint.HandlerWithConfig(ep, hcfg)))

	srv := &http.Server{
		Addr:              *addr,
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
		ErrorLog:          slog.NewLogLogger(logger.Handler(), slog.LevelWarn),
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	logger.Info("endpoint serving SPARQL",
		"name", *name, "addr", *addr, "triples", ep.Store().Len(), "metrics", *metrics)

	select {
	case err := <-errCh:
		logger.Error("server exited", "err", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	logger.Info("shutting down", "drain", *drain)
	dctx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		logger.Warn("drain incomplete, closing", "err", err)
		os.Exit(1)
	}
	if exporter != nil {
		if err := exporter.Shutdown(dctx); err != nil {
			logger.Warn("trace exporter drain incomplete", "err", err)
		}
	}
	logger.Info("shutdown complete")
}

// statusWriter captures the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// accessLog logs one line per request — method, path, status,
// duration, remote address — and feeds the duration into reqDur when
// metrics are enabled.
func accessLog(logger *slog.Logger, reqDur *obs.Histogram, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		elapsed := time.Since(start)
		if reqDur != nil {
			reqDur.ObserveDuration(elapsed)
		}
		logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status),
			slog.Duration("duration", elapsed),
			slog.String("remote", r.RemoteAddr),
		)
	})
}
