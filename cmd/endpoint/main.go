// Command endpoint serves an N-Triples file as a SPARQL endpoint over
// HTTP (query via GET ?query= or POST, results as SPARQL JSON):
//
//	endpoint -data university0.nt -addr :8001 -name univ0
//
// A federation of such processes is queryable with cmd/lusail.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"lusail"
)

func main() {
	var (
		data = flag.String("data", "", "N-Triples file to serve (required)")
		addr = flag.String("addr", ":8001", "listen address")
		name = flag.String("name", "endpoint", "endpoint name")
	)
	flag.Parse()
	if *data == "" {
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*data)
	if err != nil {
		log.Fatalf("open %s: %v", *data, err)
	}
	ep, err := lusail.LoadEndpoint(*name, f)
	f.Close()
	if err != nil {
		log.Fatalf("load %s: %v", *data, err)
	}
	fmt.Printf("endpoint %q: %d triples, serving SPARQL at %s\n", *name, ep.Store().Len(), *addr)
	log.Fatal(http.ListenAndServe(*addr, lusail.Serve(ep)))
}
