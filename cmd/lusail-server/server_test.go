package main

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strconv"
	"strings"
	"testing"
	"time"

	"lusail"
	"lusail/internal/endpoint"
)

// testEndpoints builds two in-process endpoints with a few triples.
func testEndpoints(t *testing.T) []lusail.Endpoint {
	t.Helper()
	var aDoc, bDoc strings.Builder
	for i := 0; i < 5; i++ {
		fmt.Fprintf(&aDoc, "<http://ex/s%d> <http://ex/p> \"a%d\" .\n", i, i)
		fmt.Fprintf(&bDoc, "<http://ex/t%d> <http://ex/q> \"b%d\" .\n", i, i)
	}
	return []lusail.Endpoint{loadEndpoint(t, "epA", aDoc.String()), loadEndpoint(t, "epB", bDoc.String())}
}

func loadEndpoint(t *testing.T, name, ntriples string) *lusail.MemoryEndpoint {
	t.Helper()
	ep, err := lusail.LoadEndpoint(name, strings.NewReader(ntriples))
	if err != nil {
		t.Fatal(err)
	}
	return ep
}

func quietLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, nil))
}

func waitReady(t *testing.T, ts *httptest.Server) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/readyz")
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return
			}
			if !strings.Contains(string(body), "probing") {
				return // probing done; not-ready for another reason
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("server never finished initial probing")
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// metricValue extracts the value of the first exposition line whose
// name+labels prefix matches.
func metricValue(t *testing.T, page, prefix string) float64 {
	t.Helper()
	for _, line := range strings.Split(page, "\n") {
		if strings.HasPrefix(line, prefix) {
			fields := strings.Fields(line)
			v, err := strconv.ParseFloat(fields[len(fields)-1], 64)
			if err != nil {
				t.Fatalf("parsing %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %q not found in:\n%s", prefix, page)
	return 0
}

func TestQueryAndMetricsExposition(t *testing.T) {
	s := newServer(testEndpoints(t), serverConfig{Logger: quietLogger()})
	ts := httptest.NewServer(s.mux)
	defer ts.Close()
	s.probe(context.Background())
	waitReady(t, ts)

	// One federated query over /sparql.
	q := url.QueryEscape(`SELECT ?s ?o WHERE { ?s <http://ex/p> ?o }`)
	status, body := get(t, ts.URL+"/sparql?query="+q)
	if status != http.StatusOK {
		t.Fatalf("query status %d: %s", status, body)
	}
	if !strings.Contains(body, "a0") {
		t.Fatalf("expected bindings in response, got: %s", body)
	}

	status, page := get(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status %d", status)
	}
	if got := metricValue(t, page, "lusail_queries_total"); got != 1 {
		t.Errorf("lusail_queries_total = %v, want 1", got)
	}
	if got := metricValue(t, page, `lusail_endpoint_requests_total{endpoint="epA"}`); got == 0 {
		t.Errorf("epA request counter is zero")
	}
	if got := metricValue(t, page, `lusail_endpoint_requests_total{endpoint="epB"}`); got == 0 {
		t.Errorf("epB request counter is zero")
	}
	// Per-phase counters flow from core.Metrics.
	if got := metricValue(t, page, `lusail_remote_requests_total{kind="ask"}`); got == 0 {
		t.Errorf("ask request counter is zero")
	}

	// The scraped latency histogram must match the Instrumented
	// decorator's own counts.
	for _, st := range s.fed.EndpointStats() {
		want := st.Stats.Latency.Count()
		if want == 0 {
			t.Fatalf("endpoint %s: no instrumented latency samples", st.Name)
		}
		got := metricValue(t, page,
			fmt.Sprintf(`lusail_endpoint_latency_seconds_count{endpoint=%q}`, st.Name))
		if int64(got) != want {
			t.Errorf("endpoint %s: scraped latency count %v, instrumented count %d", st.Name, got, want)
		}
	}

	// The query duration histogram recorded exactly one observation.
	if got := metricValue(t, page, "lusail_query_duration_seconds_count"); got != 1 {
		t.Errorf("lusail_query_duration_seconds_count = %v, want 1", got)
	}
}

func TestHealthAlwaysOK(t *testing.T) {
	s := newServer(testEndpoints(t), serverConfig{Logger: quietLogger()})
	ts := httptest.NewServer(s.mux)
	defer ts.Close()
	if status, _ := get(t, ts.URL+"/healthz"); status != http.StatusOK {
		t.Fatalf("/healthz status %d, want 200", status)
	}
}

func TestReadyzReportsProbing(t *testing.T) {
	s := newServer(testEndpoints(t), serverConfig{Logger: quietLogger()})
	ts := httptest.NewServer(s.mux)
	defer ts.Close()
	// probe() has not run (serve() starts it): readiness must fail.
	status, body := get(t, ts.URL+"/readyz")
	if status != http.StatusServiceUnavailable || !strings.Contains(body, "probing") {
		t.Fatalf("pre-probe /readyz = %d %q, want 503 probing", status, body)
	}
	go s.probe(context.Background())
	waitReady(t, ts)
	if status, _ := get(t, ts.URL+"/readyz"); status != http.StatusOK {
		t.Fatalf("post-probe /readyz = %d, want 200", status)
	}
}

func TestReadyzFlipsWithBreakerAndRecovers(t *testing.T) {
	eps := testEndpoints(t)
	// Fault-inject epA: the startup probe consumes one failure, then
	// three query-driven failures open the breaker, two more fail the
	// half-open probes, and the seventh request succeeds, closing it.
	faulty := endpoint.NewFaulty(eps[0], endpoint.FaultConfig{FailFirst: 6})
	rc := lusail.ResilienceConfig{
		MaxRetries:      0,
		BreakerFailures: 3,
		BreakerCooldown: 20 * time.Millisecond,
	}
	// StrictReady restores the historical any-open-breaker rule this
	// test exercises; the relaxed default keeps a partially degraded
	// federation ready (see TestReadyzToleratesPartialOutage).
	s := newServer([]lusail.Endpoint{faulty, eps[1]}, serverConfig{
		Logger:      quietLogger(),
		Resilience:  &rc,
		StrictReady: true,
	})
	ts := httptest.NewServer(s.mux)
	defer ts.Close()
	go s.probe(context.Background())
	waitReady(t, ts)

	query := func(i int) int {
		// Distinct predicates bypass the ASK cache so every query
		// really probes the endpoints.
		q := url.QueryEscape(fmt.Sprintf(`SELECT ?s WHERE { ?s <http://ex/fresh%d> ?o }`, i))
		status, _ := get(t, ts.URL+"/sparql?query="+q)
		return status
	}

	// Three failing queries trip the breaker.
	for i := 0; i < 3; i++ {
		if status := query(i); status != http.StatusInternalServerError {
			t.Fatalf("query %d status %d, want 500", i, status)
		}
	}
	status, body := get(t, ts.URL+"/readyz")
	if status != http.StatusServiceUnavailable {
		t.Fatalf("/readyz with open breaker = %d (%s), want 503", status, body)
	}
	if !strings.Contains(body, "epA") {
		t.Fatalf("/readyz body %q does not name the broken endpoint", body)
	}
	// The breaker gauge must agree with the probe.
	_, page := get(t, ts.URL+"/metrics")
	if got := metricValue(t, page, `lusail_breaker_open{endpoint="epA"}`); got != 1 {
		t.Errorf(`lusail_breaker_open{endpoint="epA"} = %v, want 1`, got)
	}

	// Recovery: wait out cooldowns; the remaining two fault-injected
	// failures burn half-open probes, then a request succeeds and the
	// circuit closes.
	deadline := time.Now().Add(5 * time.Second)
	i := 3
	for time.Now().Before(deadline) {
		time.Sleep(25 * time.Millisecond)
		query(i)
		i++
		if status, _ := get(t, ts.URL+"/readyz"); status == http.StatusOK {
			break
		}
	}
	if status, body := get(t, ts.URL+"/readyz"); status != http.StatusOK {
		t.Fatalf("/readyz never recovered: %d %q", status, body)
	}
}

func TestReadyzToleratesPartialOutage(t *testing.T) {
	eps := testEndpoints(t)
	// epA permanently down; epB healthy. Under the relaxed default
	// rule a single open breaker must NOT flip readiness.
	faulty := endpoint.NewFaulty(eps[0], endpoint.FaultConfig{Down: true})
	rc := lusail.ResilienceConfig{
		MaxRetries:      0,
		BreakerFailures: 2,
		BreakerCooldown: time.Minute, // stays open for the whole test
	}
	s := newServer([]lusail.Endpoint{faulty, eps[1]}, serverConfig{
		Logger:      quietLogger(),
		Resilience:  &rc,
		Degradation: lusail.DegradeBestEffort,
	})
	ts := httptest.NewServer(s.mux)
	defer ts.Close()
	go s.probe(context.Background())
	waitReady(t, ts)

	// Trip epA's breaker with failing queries (best-effort absorbs the
	// endpoint loss, so the queries themselves succeed).
	for i := 0; i < 3; i++ {
		q := url.QueryEscape(fmt.Sprintf(`SELECT ?s WHERE { ?s <http://ex/fresh%d> ?o }`, i))
		if status, body := get(t, ts.URL+"/sparql?query="+q); status != http.StatusOK {
			t.Fatalf("best-effort query %d = %d: %s", i, status, body)
		}
	}
	_, page := get(t, ts.URL+"/metrics")
	if got := metricValue(t, page, `lusail_breaker_open{endpoint="epA"}`); got != 1 {
		t.Fatalf(`lusail_breaker_open{endpoint="epA"} = %v, want 1 (breaker never opened)`, got)
	}

	// Partially degraded federation stays ready.
	if status, body := get(t, ts.URL+"/readyz"); status != http.StatusOK {
		t.Errorf("/readyz with one open breaker = %d %q, want 200", status, body)
	}
	// /healthz carries the per-endpoint detail.
	if _, body := get(t, ts.URL+"/healthz"); !strings.Contains(body, `"epA"`) ||
		!strings.Contains(body, `"open"`) {
		t.Errorf("/healthz missing per-endpoint breaker detail: %s", body)
	}
}

func TestBestEffortQueryMarksPartialResults(t *testing.T) {
	eps := testEndpoints(t)
	down := endpoint.NewFaulty(eps[1], endpoint.FaultConfig{Down: true})
	s := newServer([]lusail.Endpoint{eps[0], down}, serverConfig{
		Logger:      quietLogger(),
		Degradation: lusail.DegradeBestEffort,
	})
	ts := httptest.NewServer(s.mux)
	defer ts.Close()
	s.probe(context.Background())

	q := url.QueryEscape(`SELECT ?s ?o WHERE { ?s <http://ex/p> ?o }`)
	resp, err := http.Get(ts.URL + "/sparql?query=" + q)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("best-effort query = %d: %s", resp.StatusCode, body)
	}
	// The JSON path streams, so completeness arrives as a trailer
	// (populated once the body has been fully read).
	if got := resp.Trailer.Get("X-Lusail-Partial-Results"); got != "true" {
		t.Errorf("X-Lusail-Partial-Results trailer = %q, want true", got)
	}
	if !strings.Contains(string(body), "a0") {
		t.Errorf("partial results missing surviving endpoint's rows: %s", body)
	}

	_, page := get(t, ts.URL+"/metrics")
	if got := metricValue(t, page, "lusail_degraded_queries_total"); got != 1 {
		t.Errorf("lusail_degraded_queries_total = %v, want 1", got)
	}
	if got := metricValue(t, page, "lusail_dropped_endpoints_total"); got == 0 {
		t.Errorf("lusail_dropped_endpoints_total = 0, want > 0")
	}
}

func TestAdmissionShedsOverloadAndStaysReady(t *testing.T) {
	// A simulated 150ms RTT keeps each query holding its slot long
	// enough for 16 concurrent clients to pile up behind limit 2.
	slow := loadEndpoint(t, "slowEP", `<http://ex/s> <http://ex/p> "v" .`).
		WithNetwork(lusail.NetworkProfile{RTT: 150 * time.Millisecond})
	s := newServer([]lusail.Endpoint{slow}, serverConfig{
		Logger:        quietLogger(),
		MaxConcurrent: 2,
		MaxQueue:      2,
		QueueWait:     50 * time.Millisecond,
	})
	ts := httptest.NewServer(s.mux)
	defer ts.Close()
	s.probe(context.Background())

	const clients = 16
	type outcome struct {
		status     int
		retryAfter string
	}
	results := make(chan outcome, clients)
	q := url.QueryEscape(`SELECT ?s WHERE { ?s <http://ex/p> ?o }`)
	for i := 0; i < clients; i++ {
		go func() {
			resp, err := http.Get(ts.URL + "/sparql?query=" + q)
			if err != nil {
				results <- outcome{status: -1}
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			results <- outcome{status: resp.StatusCode, retryAfter: resp.Header.Get("Retry-After")}
		}()
	}
	var ok, shed int
	for i := 0; i < clients; i++ {
		o := <-results
		switch o.status {
		case http.StatusOK:
			ok++
		case http.StatusServiceUnavailable:
			shed++
			if o.retryAfter == "" {
				t.Errorf("shed response missing Retry-After header")
			}
		default:
			t.Errorf("unexpected status %d", o.status)
		}
	}
	if ok == 0 {
		t.Errorf("no query succeeded under overload")
	}
	if shed == 0 {
		t.Errorf("no request was shed with limit 2 and %d clients", clients)
	}

	_, page := get(t, ts.URL+"/metrics")
	if got := metricValue(t, page, "lusail_shed_requests_total"); got != float64(shed) {
		t.Errorf("lusail_shed_requests_total = %v, want %d", got, shed)
	}
	if got := metricValue(t, page, "lusail_server_inflight_peak"); got > 2 {
		t.Errorf("in-flight peak %v exceeded limit 2", got)
	}
	if got := metricValue(t, page, "lusail_admission_limit"); got != 2 {
		t.Errorf("lusail_admission_limit = %v, want 2", got)
	}
	// A momentarily full queue must not flip readiness.
	if status, body := get(t, ts.URL+"/readyz"); status != http.StatusOK {
		t.Errorf("/readyz under overload = %d %q, want 200", status, body)
	}
}

func TestAdmissionSaturationHysteresis(t *testing.T) {
	a := newAdmission(1, 1, 10*time.Millisecond)
	now := time.Now()
	a.now = func() time.Time { return now }

	release, ok := a.acquire(context.Background())
	if !ok {
		t.Fatal("first acquire should be admitted")
	}
	// Fill the queue spot, then overflow it: the overflow is shed and
	// marks the queue full.
	queued := make(chan bool)
	go func() {
		r, ok := a.acquire(context.Background())
		if ok {
			defer r()
		}
		queued <- ok
	}()
	for a.queued.Load() == 0 {
		time.Sleep(time.Millisecond)
	}
	if _, ok := a.acquire(context.Background()); ok {
		t.Fatal("overflow acquire should be shed")
	}
	if a.saturated() {
		t.Error("saturation must not report before the window elapses")
	}
	now = now.Add(satWindow + time.Second)
	if !a.saturated() {
		t.Error("sustained full queue should report saturation")
	}
	// Progress (a slot release) clears saturation.
	release()
	if got := <-queued; !got {
		// The queued waiter may have timed out instead; either way a
		// release resets the full-since marker.
		_ = got
	}
	if a.saturated() {
		t.Error("saturation must clear after a slot release")
	}
}

func TestSlowQueryCapturedWithSpanTree(t *testing.T) {
	s := newServer(testEndpoints(t), serverConfig{
		Logger:        quietLogger(),
		SlowThreshold: time.Nanosecond, // every query is slow
	})
	ts := httptest.NewServer(s.mux)
	defer ts.Close()

	q := url.QueryEscape(`SELECT ?s WHERE { ?s <http://ex/p> ?o }`)
	if status, body := get(t, ts.URL+"/sparql?query="+q); status != http.StatusOK {
		t.Fatalf("query status %d: %s", status, body)
	}

	status, body := get(t, ts.URL+"/debug/queries")
	if status != http.StatusOK {
		t.Fatalf("/debug/queries status %d", status)
	}
	for _, want := range []string{`"slow": true`, `"span_tree"`, "source-selection", `qid=q`} {
		if !strings.Contains(body, want) {
			t.Errorf("/debug/queries missing %q:\n%s", want, body)
		}
	}
	if len(s.qlog.Slow()) != 1 {
		t.Fatalf("slow ring has %d records, want 1", len(s.qlog.Slow()))
	}
	rec := s.qlog.Slow()[0]
	if !strings.Contains(rec.SpanTree, "finalize") {
		t.Errorf("span tree missing finalize span:\n%s", rec.SpanTree)
	}
	_, page := get(t, ts.URL+"/metrics")
	if got := metricValue(t, page, "lusail_slow_queries_total"); got != 1 {
		t.Errorf("lusail_slow_queries_total = %v, want 1", got)
	}
}

func TestSparqlProtocolSurface(t *testing.T) {
	s := newServer(testEndpoints(t), serverConfig{Logger: quietLogger()})
	ts := httptest.NewServer(s.mux)
	defer ts.Close()

	// Unsupported method: 405 with Allow.
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/sparql", nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("DELETE status %d, want 405", resp.StatusCode)
	}
	if got := resp.Header.Get("Allow"); got != "GET, POST" {
		t.Fatalf("Allow = %q, want GET, POST", got)
	}

	// Malformed query: 400.
	if status, _ := get(t, ts.URL+"/sparql?query="+url.QueryEscape("SELEKT broken")); status != http.StatusBadRequest {
		t.Fatalf("malformed query status %d, want 400", status)
	}

	// POST with direct query body (charset parameter included).
	req, _ = http.NewRequest(http.MethodPost, ts.URL+"/sparql",
		strings.NewReader(`SELECT ?s WHERE { ?s <http://ex/p> ?o }`))
	req.Header.Set("Content-Type", "application/sparql-query; charset=utf-8")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "http://ex/s0") {
		t.Fatalf("sparql-query POST: %d %s", resp.StatusCode, body)
	}

	// Content negotiation: CSV.
	req, _ = http.NewRequest(http.MethodGet,
		ts.URL+"/sparql?query="+url.QueryEscape(`SELECT ?s WHERE { ?s <http://ex/p> ?o }`), nil)
	req.Header.Set("Accept", "text/csv")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/csv" {
		t.Fatalf("Accept text/csv → Content-Type %q", ct)
	}
	if !strings.HasPrefix(string(body), "s\r\n") && !strings.HasPrefix(string(body), "s\n") {
		t.Fatalf("CSV body: %q", body)
	}
}

func TestGracefulDrain(t *testing.T) {
	// An endpoint with a simulated 200ms RTT keeps the query in
	// flight long enough to race shutdown against it.
	slow := loadEndpoint(t, "slowEP", `<http://ex/s> <http://ex/p> "v" .`).
		WithNetwork(lusail.NetworkProfile{RTT: 200 * time.Millisecond})
	s := newServer([]lusail.Endpoint{slow}, serverConfig{Logger: quietLogger()})

	ln, err := s.listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- s.serve(ctx, ln, 5*time.Second) }()
	base := "http://" + ln.Addr().String()

	type result struct {
		status int
		body   string
		at     time.Time
	}
	results := make(chan result, 1)
	go func() {
		q := url.QueryEscape(`SELECT ?s WHERE { ?s <http://ex/p> ?o }`)
		resp, err := http.Get(base + "/sparql?query=" + q)
		if err != nil {
			results <- result{status: -1, body: err.Error(), at: time.Now()}
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		results <- result{status: resp.StatusCode, body: string(body), at: time.Now()}
	}()

	// Let the query get on the wire, then trigger shutdown mid-flight.
	time.Sleep(50 * time.Millisecond)
	cancel()

	res := <-results
	if res.status != http.StatusOK {
		t.Fatalf("in-flight query during shutdown: %d %s", res.status, res.body)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("serve returned error: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("serve did not return after drain")
	}
	if len(s.qlog.Recent()) != 1 {
		t.Fatalf("drained query not recorded: %d records", len(s.qlog.Recent()))
	}
}

// A POST body over the configured cap gets 413 from /sparql; a body
// under it is served normally.
func TestServerRequestBodyCap(t *testing.T) {
	s := newServer(testEndpoints(t), serverConfig{Logger: quietLogger(), MaxRequestBytes: 256})
	ts := httptest.NewServer(s.mux)
	defer ts.Close()
	s.probe(context.Background())
	waitReady(t, ts)

	small := url.Values{"query": {`SELECT ?s ?o WHERE { ?s <http://ex/p> ?o }`}}
	resp, err := http.PostForm(ts.URL+"/sparql", small)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("small body: status %d, want 200", resp.StatusCode)
	}

	big := url.Values{"query": {`SELECT ?s ?o WHERE { ?s <http://ex/p> ?o } # ` + strings.Repeat("x", 1024)}}
	resp, err = http.PostForm(ts.URL+"/sparql", big)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", resp.StatusCode)
	}
}

// TestDebugStatsHarvestAndExposition drives the statistics surface:
// POST /debug/stats harvests every endpoint, a warmed query then plans
// without endpoint probes, and the snapshot plus the lusail_stats_*
// metric families report the service's state.
func TestDebugStatsHarvestAndExposition(t *testing.T) {
	s := newServer(testEndpoints(t), serverConfig{Logger: quietLogger(), Statistics: true})
	ts := httptest.NewServer(s.mux)
	defer ts.Close()
	s.probe(context.Background())
	waitReady(t, ts)

	resp, err := http.Post(ts.URL+"/debug/stats", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /debug/stats: status %d: %s", resp.StatusCode, body)
	}
	if !strings.Contains(string(body), `"Summaries": 2`) {
		t.Fatalf("snapshot after harvest lacks 2 summaries: %s", body)
	}

	q := url.QueryEscape(`SELECT ?s ?o WHERE { ?s <http://ex/p> ?o }`)
	if status, qb := get(t, ts.URL+"/sparql?query="+q); status != http.StatusOK {
		t.Fatalf("query status %d: %s", status, qb)
	}

	status, page := get(t, ts.URL+"/metrics")
	if status != http.StatusOK {
		t.Fatalf("/metrics status %d", status)
	}
	if got := metricValue(t, page, "lusail_stats_summaries"); got != 2 {
		t.Errorf("lusail_stats_summaries = %v, want 2", got)
	}
	if got := metricValue(t, page, "lusail_stats_lookup_hits_total"); got == 0 {
		t.Error("no summary lookups served after a warmed query")
	}
	// The warmed query planned without a single ASK probe (the family
	// is omitted entirely while its counter has never incremented).
	for _, line := range strings.Split(page, "\n") {
		if strings.HasPrefix(line, `lusail_remote_requests_total{kind="ask"}`) &&
			!strings.HasSuffix(strings.TrimSpace(line), " 0") {
			t.Errorf("ask requests after warm harvest: %s, want 0", line)
		}
	}
}

// TestDebugStatsDisabled: POST without -stats is refused; GET reports
// the service off.
func TestDebugStatsDisabled(t *testing.T) {
	s := newServer(testEndpoints(t), serverConfig{Logger: quietLogger()})
	ts := httptest.NewServer(s.mux)
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/debug/stats", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("POST with stats off: status %d, want 409", resp.StatusCode)
	}
	if status, body := get(t, ts.URL+"/debug/stats"); status != http.StatusOK ||
		!strings.Contains(body, `"enabled": false`) {
		t.Fatalf("GET with stats off: status %d body %s", status, body)
	}
}
