package main

import (
	"sync"
	"sync/atomic"

	"lusail"
	"lusail/internal/obs"
)

// queryFlight is one in-flight query execution. The leader executes
// the query (streaming to its own client as usual) and publishes the
// materialized result here; followers block on done and replay it,
// each encoding per its own Accept header.
type queryFlight struct {
	done chan struct{}
	res  *lusail.Results
	err  error
}

// singleflight collapses concurrent identical queries into one engine
// execution. Keys are the canonicalized (parsed and re-rendered) query
// text plus the server's policy context, so two spellings of the same
// query collapse while different execution policies never share.
//
// Attribution stays per-request: only the leader reaches the engine,
// so the query log, trace, and engine metrics record exactly one
// execution, and the collapsed counter below accounts for the
// follower requests served from it.
type singleflight struct {
	mu sync.Mutex
	m  map[string]*queryFlight

	leaders   atomic.Int64
	collapsed atomic.Int64
}

func newSingleflight() *singleflight {
	return &singleflight{m: map[string]*queryFlight{}}
}

// join returns the flight for key. follower is true when an identical
// query is already executing — the caller waits on flight.done and
// replays flight.res. Otherwise the caller is the leader: it must
// execute the query and call finish exactly once.
func (sf *singleflight) join(key string) (f *queryFlight, follower bool) {
	sf.mu.Lock()
	defer sf.mu.Unlock()
	if f, ok := sf.m[key]; ok {
		sf.collapsed.Add(1)
		return f, true
	}
	f = &queryFlight{done: make(chan struct{})}
	sf.m[key] = f
	sf.leaders.Add(1)
	return f, false
}

// finish publishes the leader's outcome and wakes the followers. The
// flight is deregistered first, so a request arriving after a failure
// leads its own fresh execution instead of replaying the error.
func (sf *singleflight) finish(key string, f *queryFlight, res *lusail.Results, err error) {
	sf.mu.Lock()
	if sf.m[key] == f {
		delete(sf.m, key)
	}
	sf.mu.Unlock()
	f.res, f.err = res, err
	close(f.done)
}

// register exposes the collapse counters: leaders are engine
// executions, collapsed are requests served from another request's
// execution.
func (sf *singleflight) register(reg *obs.Registry) {
	reg.RegisterCollector(func() []obs.Family {
		return []obs.Family{
			{Name: "lusail_server_singleflight_leaders_total",
				Help: "Queries that executed as singleflight leaders.", Kind: "counter",
				Samples: []obs.Sample{{Value: float64(sf.leaders.Load())}}},
			{Name: "lusail_server_singleflight_collapsed_total",
				Help: "Requests collapsed onto an identical in-flight query.", Kind: "counter",
				Samples: []obs.Sample{{Value: float64(sf.collapsed.Load())}}},
		}
	})
}
