package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync/atomic"
	"time"

	"lusail"
	"lusail/internal/sparql"
)

// serverConfig tunes the daemon.
type serverConfig struct {
	// Logger receives the structured query log and server events (nil
	// = slog.Default).
	Logger *slog.Logger
	// SlowThreshold marks queries at or above this duration as slow
	// (captured with span trees in /debug/queries).
	SlowThreshold time.Duration
	// RingSize bounds the recent/slow query rings.
	RingSize int
	// QueryTimeout bounds each federated query (0 = no limit).
	QueryTimeout time.Duration
	// MaxRequestBytes caps SPARQL protocol POST bodies; oversized
	// requests get 413. 0 selects the endpoint package's default cap;
	// negative disables the cap.
	MaxRequestBytes int64
	// Resilience, when non-nil, enables the endpoint fault-tolerance
	// layer (retries + circuit breakers).
	Resilience *lusail.ResilienceConfig
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool

	// MaxConcurrent bounds concurrently executing queries (0 = no
	// limit). Excess requests wait in a bounded queue and are shed
	// with 503 + Retry-After when the queue is full or QueueWait
	// expires.
	MaxConcurrent int
	// MaxQueue bounds requests waiting for a query slot (default 64).
	MaxQueue int
	// QueueWait bounds how long a request may wait for a slot
	// (default 2s).
	QueueWait time.Duration
	// StrictReady restores the historical readiness rule: /readyz
	// reports 503 while ANY endpoint's circuit breaker is open. The
	// default treats a partially degraded federation as ready and only
	// reports 503 while probing, while every endpoint's breaker is
	// open, or under sustained admission saturation.
	StrictReady bool

	// Degradation selects the federation's degraded-execution policy.
	Degradation lusail.DegradePolicy
	// QueryBudget is the per-query wall-clock budget (0 = none).
	QueryBudget time.Duration
	// Hedge enables hedged backup requests for phase-1 subqueries.
	Hedge bool
}

// server is the lusail-server daemon: a federation plus its
// operational surface (SPARQL protocol, metrics, health, readiness,
// query-log debug).
type server struct {
	fed    *lusail.Federation
	reg    *lusail.MetricsRegistry
	qlog   *lusail.QueryLog
	logger *slog.Logger
	cfg    serverConfig

	mux    *http.ServeMux
	adm    *admission
	probed atomic.Bool // initial source probing complete
}

// newServer wires the observability stack around a federation over
// eps and builds the HTTP surface.
func newServer(eps []lusail.Endpoint, cfg serverConfig) *server {
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	reg := lusail.NewMetricsRegistry()
	qlog := lusail.NewQueryLog(lusail.QueryLogConfig{
		Logger:        logger,
		SlowThreshold: cfg.SlowThreshold,
		RingSize:      cfg.RingSize,
		Registry:      reg,
	})
	opts := []lusail.Option{lusail.WithObservability(qlog)}
	if cfg.Resilience != nil {
		opts = append(opts, lusail.WithResilience(*cfg.Resilience))
	}
	if cfg.Degradation != lusail.DegradeFail {
		opts = append(opts, lusail.WithDegradation(cfg.Degradation))
	}
	if cfg.QueryBudget > 0 {
		opts = append(opts, lusail.WithQueryBudget(cfg.QueryBudget))
	}
	if cfg.Hedge {
		opts = append(opts, lusail.WithHedging(lusail.DefaultHedge()))
	}
	fed := lusail.New(eps, opts...)
	fed.RegisterMetrics(reg)

	maxQueue := cfg.MaxQueue
	if maxQueue <= 0 {
		maxQueue = 64
	}
	queueWait := cfg.QueueWait
	if queueWait <= 0 {
		queueWait = 2 * time.Second
	}
	adm := newAdmission(cfg.MaxConcurrent, maxQueue, queueWait)
	adm.register(reg)

	s := &server{fed: fed, reg: reg, qlog: qlog, logger: logger, cfg: cfg, adm: adm}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/sparql", s.handleQuery)
	s.mux.Handle("/metrics", reg.Handler())
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/readyz", s.handleReady)
	s.mux.Handle("/debug/queries", qlog.DebugHandler())
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// probe runs the initial source probing: one ASK against every
// endpoint, in parallel, to warm connections and surface dead
// endpoints at startup. /readyz reports 503 until probing completes
// (probe failures are logged but do not block readiness forever — the
// breakers own steady-state health).
func (s *server) probe(ctx context.Context) {
	eps := s.fed.Endpoints()
	done := make(chan struct{}, len(eps))
	for _, ep := range eps {
		ep := ep
		go func() {
			defer func() { done <- struct{}{} }()
			pctx, cancel := context.WithTimeout(ctx, 10*time.Second)
			defer cancel()
			if _, err := ep.Query(pctx, "ASK { ?s ?p ?o }"); err != nil {
				s.logger.Warn("startup probe failed", "endpoint", ep.Name(), "err", err)
				return
			}
			s.logger.Info("startup probe ok", "endpoint", ep.Name())
		}()
	}
	for range eps {
		<-done
	}
	s.probed.Store(true)
	s.logger.Info("initial source probing complete", "endpoints", len(eps))
}

// handleHealth is the liveness probe: the process is up and serving.
// The body carries per-endpoint detail (breaker state per endpoint)
// as JSON, so a partially degraded federation is visible here while
// /readyz keeps routing traffic to the survivors.
func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	type epHealth struct {
		Name    string `json:"name"`
		Breaker string `json:"breaker,omitempty"`
	}
	states := s.fed.BreakerStates()
	out := struct {
		Status    string     `json:"status"`
		Probed    bool       `json:"probed"`
		Endpoints []epHealth `json:"endpoints"`
	}{Status: "ok", Probed: s.probed.Load()}
	byName := map[string]lusail.BreakerState{}
	for _, b := range states {
		byName[b.Name] = b.State
	}
	for _, ep := range s.fed.Endpoints() {
		h := epHealth{Name: ep.Name()}
		if st, ok := byName[ep.Name()]; ok {
			h.Breaker = breakerName(st)
		}
		out.Endpoints = append(out.Endpoints, h)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}

func breakerName(st lusail.BreakerState) string {
	switch st {
	case lusail.BreakerOpen:
		return "open"
	case lusail.BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// handleReady is the readiness probe. By default a partially degraded
// federation stays ready: 503 only while initial source probing is
// incomplete, while EVERY endpoint's circuit breaker is open (nothing
// left to answer from), or under sustained admission saturation. With
// StrictReady, any single open breaker reports 503 (the historical
// rule, for deployments that would rather fail over than degrade).
func (s *server) handleReady(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.probed.Load() {
		http.Error(w, "not ready: initial source probing incomplete", http.StatusServiceUnavailable)
		return
	}
	if s.adm.saturated() {
		http.Error(w, "not ready: admission queue saturated", http.StatusServiceUnavailable)
		return
	}
	states := s.fed.BreakerStates()
	open := 0
	firstOpen := ""
	for _, b := range states {
		if b.State == lusail.BreakerOpen {
			open++
			if firstOpen == "" {
				firstOpen = b.Name
			}
		}
	}
	if s.cfg.StrictReady && open > 0 {
		http.Error(w, fmt.Sprintf("not ready: circuit breaker open for endpoint %s", firstOpen),
			http.StatusServiceUnavailable)
		return
	}
	if len(states) > 0 && open == len(states) {
		http.Error(w, "not ready: all endpoint circuit breakers open", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleQuery serves the SPARQL protocol for federated queries: GET
// with ?query=, POST with a form-encoded query parameter, or POST
// with an application/sparql-query body. Results are encoded per the
// Accept header (JSON default; XML, CSV, TSV supported).
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	// Cap the request body before anything reads it: an unbounded
	// io.ReadAll over an attacker-sized body is a trivial memory DoS.
	if r.Method == http.MethodPost {
		max := s.cfg.MaxRequestBytes
		if max == 0 {
			max = lusail.DefaultMaxRequestBytes
		}
		if max > 0 {
			r.Body = http.MaxBytesReader(w, r.Body, max)
		}
	}
	query, err := extractQuery(r)
	if err != nil {
		if errors.Is(err, errMethod) {
			w.Header().Set("Allow", "GET, POST")
			http.Error(w, err.Error(), http.StatusMethodNotAllowed)
			return
		}
		status := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(w, err.Error(), status)
		return
	}

	// A syntactically invalid query is the client's fault: reject it
	// with 400 before it reaches the engine (mirroring the SPARQL
	// protocol's MalformedQuery distinction).
	if _, perr := sparql.Parse(query); perr != nil {
		http.Error(w, perr.Error(), http.StatusBadRequest)
		return
	}

	// Admission control: take a query slot (waiting briefly in the
	// bounded queue) or shed the request so overload turns into fast
	// 503s instead of unbounded queueing.
	release, ok := s.adm.acquire(r.Context())
	if !ok {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "server overloaded, retry later", http.StatusServiceUnavailable)
		return
	}
	defer release()

	// r.Context() so a client disconnect cancels the federated query:
	// the engine's streaming executor aborts its in-flight subqueries
	// and the admission slot frees as soon as the handler returns.
	ctx := r.Context()
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}

	// The JSON default streams solution rows as they land; the other
	// formats keep the buffered path (their encoders need the full
	// result anyway, and XML's head carries no row-independent state
	// worth splitting).
	accept := r.Header.Get("Accept")
	if !strings.Contains(accept, "application/sparql-results+xml") &&
		!strings.Contains(accept, "text/csv") &&
		!strings.Contains(accept, "text/tab-separated-values") {
		s.streamQuery(w, ctx, query)
		return
	}

	// Traced execution so slow queries carry their span tree into the
	// query log's ring buffer.
	res, _, _, err := s.fed.QueryTraced(ctx, query)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if c := res.Completeness; c != nil && !c.Complete {
		w.Header().Set("X-Lusail-Partial-Results", "true")
	}

	switch {
	case strings.Contains(accept, "application/sparql-results+xml"):
		w.Header().Set("Content-Type", "application/sparql-results+xml")
		err = res.EncodeXML(w)
	case strings.Contains(accept, "text/csv"):
		w.Header().Set("Content-Type", "text/csv")
		err = res.EncodeCSV(w)
	default:
		w.Header().Set("Content-Type", "text/tab-separated-values")
		err = res.EncodeTSV(w)
	}
	if err != nil {
		s.logger.Debug("result encoding failed mid-stream", "err", err)
	}
}

// streamQuery serves the SPARQL JSON path with chunked transfer: each
// result chunk is encoded and flushed as the engine produces it, so
// clients see first solutions while phase-2 subqueries are still in
// flight. Because the status line is gone after the first flush,
// end-of-stream conditions travel as HTTP trailers: X-Lusail-Partial-
// Results marks degraded completeness, X-Lusail-Error carries a
// mid-stream failure on a truncated document.
func (s *server) streamQuery(w http.ResponseWriter, ctx context.Context, query string) {
	// Trailers must be declared before the first byte of the body.
	w.Header().Set("Trailer", "X-Lusail-Partial-Results, X-Lusail-Error")
	w.Header().Set("Content-Type", "application/sparql-results+json")

	flusher, canFlush := w.(http.Flusher)
	enc := sparql.NewJSONRowEncoder(w)
	res, _, _, err := s.fed.QueryStreamTraced(ctx, query,
		func(vars []lusail.Var, rows []lusail.Binding) error {
			if err := enc.Rows(vars, rows); err != nil {
				return err
			}
			if canFlush {
				flusher.Flush()
			}
			return nil
		})
	if err != nil {
		if !enc.Started() {
			// Nothing written yet: a clean HTTP error is still possible.
			w.Header().Del("Trailer")
			w.Header().Del("Content-Type")
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("X-Lusail-Error", err.Error())
		s.logger.Debug("stream failed mid-response", "err", err)
		return
	}
	if res.AskForm {
		// ASK never streams; the boolean document goes out whole.
		w.Header().Del("Trailer")
		_ = res.EncodeJSON(w)
		return
	}
	// Close writes a valid empty document when no chunk ever arrived.
	if err := enc.Close(res.Vars); err != nil {
		s.logger.Debug("stream close failed", "err", err)
		return
	}
	// Trailer values are picked up from the header map after the body.
	if c := res.Completeness; c != nil && !c.Complete {
		w.Header().Set("X-Lusail-Partial-Results", "true")
	}
}

var errMethod = errors.New("method not allowed")

// extractQuery pulls the SPARQL query text out of a protocol request.
func extractQuery(r *http.Request) (string, error) {
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query().Get("query")
		if q == "" {
			return "", fmt.Errorf("missing query parameter")
		}
		return q, nil
	case http.MethodPost:
		if strings.HasPrefix(r.Header.Get("Content-Type"), "application/sparql-query") {
			body, err := io.ReadAll(r.Body)
			if err != nil {
				return "", err
			}
			return string(body), nil
		}
		if err := r.ParseForm(); err != nil {
			return "", err
		}
		q := r.PostForm.Get("query")
		if q == "" {
			return "", fmt.Errorf("missing query parameter")
		}
		return q, nil
	default:
		return "", fmt.Errorf("%w: %s", errMethod, r.Method)
	}
}

// listen opens the daemon's listener.
func (s *server) listen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

// serve runs the HTTP server on ln until ctx is cancelled, then
// gracefully drains in-flight queries for up to drain before closing.
// The server is configured with read-header/read/idle timeouts so a
// slowloris client cannot pin connections open.
func (s *server) serve(ctx context.Context, ln net.Listener, drain time.Duration) error {
	srv := &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
		ErrorLog:          slog.NewLogLogger(s.logger.Handler(), slog.LevelWarn),
	}
	go s.probe(ctx)

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	s.logger.Info("lusail-server listening", "addr", ln.Addr().String(),
		"endpoints", len(s.fed.Endpoints()))

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	s.logger.Info("shutting down: draining in-flight queries", "drain", drain)
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		s.logger.Warn("drain incomplete, closing", "err", err)
		return err
	}
	s.logger.Info("shutdown complete")
	return nil
}
