package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"strings"
	"sync/atomic"
	"time"

	"lusail"
	"lusail/internal/sparql"
)

// serverConfig tunes the daemon.
type serverConfig struct {
	// Logger receives the structured query log and server events (nil
	// = slog.Default).
	Logger *slog.Logger
	// SlowThreshold marks queries at or above this duration as slow
	// (captured with span trees in /debug/queries).
	SlowThreshold time.Duration
	// RingSize bounds the recent/slow query rings.
	RingSize int
	// QueryTimeout bounds each federated query (0 = no limit).
	QueryTimeout time.Duration
	// MaxRequestBytes caps SPARQL protocol POST bodies; oversized
	// requests get 413. 0 selects the endpoint package's default cap;
	// negative disables the cap.
	MaxRequestBytes int64
	// Resilience, when non-nil, enables the endpoint fault-tolerance
	// layer (retries + circuit breakers).
	Resilience *lusail.ResilienceConfig
	// EnablePprof mounts net/http/pprof under /debug/pprof/.
	EnablePprof bool

	// MaxConcurrent bounds concurrently executing queries (0 = no
	// limit). Excess requests wait in a bounded queue and are shed
	// with 503 + Retry-After when the queue is full or QueueWait
	// expires.
	MaxConcurrent int
	// MaxQueue bounds requests waiting for a query slot (default 64).
	MaxQueue int
	// QueueWait bounds how long a request may wait for a slot
	// (default 2s).
	QueueWait time.Duration
	// StrictReady restores the historical readiness rule: /readyz
	// reports 503 while ANY endpoint's circuit breaker is open. The
	// default treats a partially degraded federation as ready and only
	// reports 503 while probing, while every endpoint's breaker is
	// open, or under sustained admission saturation.
	StrictReady bool

	// Degradation selects the federation's degraded-execution policy.
	Degradation lusail.DegradePolicy
	// QueryBudget is the per-query wall-clock budget (0 = none).
	QueryBudget time.Duration
	// Hedge enables hedged backup requests for phase-1 subqueries.
	Hedge bool

	// SubqueryCacheSize enables the persistent cross-query subquery
	// result cache with at most this many entries (0 disables it).
	SubqueryCacheSize int
	// SubqueryCacheTTL bounds cached subquery staleness (0 = forever).
	// Only meaningful with SubqueryCacheSize > 0.
	SubqueryCacheTTL time.Duration
	// Singleflight collapses concurrent identical queries into one
	// engine execution, replaying the result to every caller.
	Singleflight bool

	// CoherenceWindow is how long a data-version probe stays trusted
	// (0 = every query re-probes its endpoints).
	CoherenceWindow time.Duration
	// CoherenceObserve switches the coherence fence to observe-only
	// mode: stale entries are served and counted, not invalidated.
	CoherenceObserve bool
	// CoherenceOff disables data-version probing entirely.
	CoherenceOff bool

	// Statistics enables the offline statistics service: summaries are
	// harvested at startup (and every StatsRefresh thereafter) so
	// warmed queries plan without endpoint probes.
	Statistics bool
	// StatsRefresh is the background re-harvest interval (0 = harvest
	// once at startup only). Only meaningful with Statistics.
	StatsRefresh time.Duration
	// StatsCalibrate arms the self-tuning calibration loop feeding
	// estimated-vs-actual cardinalities back into the cost model.
	StatsCalibrate bool
	// ReplanOvershoot arms mid-query re-planning at this overshoot
	// factor (0 disables).
	ReplanOvershoot float64

	// OTLPEndpoint, when non-empty, enables distributed trace export:
	// every query records a W3C-identified span tree, tail-sampled
	// (slow/errored/degraded always kept) and shipped to this OTLP/HTTP
	// collector base URL in batches.
	OTLPEndpoint string
	// ServiceName is the resource service.name stamped on exported
	// spans (default "lusail-server").
	ServiceName string
	// TraceSample, when non-nil, is the head-sampling ratio for
	// locally-rooted traces (nil = sample all; 0 leaves retention to
	// the tail rules). Inbound traceparent requests keep the caller's
	// sampled flag.
	TraceSample *float64
	// TraceSlowThreshold marks traces at or above this duration as
	// always-kept by the tail sampler (0 = fall back to SlowThreshold).
	TraceSlowThreshold time.Duration

	// SLO tunes the in-process SLO engine (zero values select the
	// defaults: 99% availability, 99% of queries under 1s, 5m/1h
	// windows, burn threshold 1).
	SLO lusail.SLOConfig
	// SLOReady degrades /readyz to 503 while any SLO objective burns
	// past the threshold in both windows, so load balancers shed
	// traffic from an instance that is eating its error budget.
	SLOReady bool
}

// server is the lusail-server daemon: a federation plus its
// operational surface (SPARQL protocol, metrics, health, readiness,
// query-log debug).
type server struct {
	fed    *lusail.Federation
	reg    *lusail.MetricsRegistry
	qlog   *lusail.QueryLog
	logger *slog.Logger
	cfg    serverConfig

	slo      *lusail.SLO
	exporter *lusail.SpanExporter // nil without -otlp-endpoint
	sink     lusail.TraceSink     // tail sampler → exporter; nil without export

	mux *http.ServeMux
	adm *admission
	sf  *singleflight // nil when collapsing is disabled
	// policyKey folds the server's execution policy into singleflight
	// keys, so deployments proxying multiple policy tiers never share.
	policyKey string
	probed    atomic.Bool // initial source probing complete
}

// newServer wires the observability stack around a federation over
// eps and builds the HTTP surface.
func newServer(eps []lusail.Endpoint, cfg serverConfig) *server {
	logger := cfg.Logger
	if logger == nil {
		logger = slog.Default()
	}
	reg := lusail.NewMetricsRegistry()
	qlog := lusail.NewQueryLog(lusail.QueryLogConfig{
		Logger:        logger,
		SlowThreshold: cfg.SlowThreshold,
		RingSize:      cfg.RingSize,
		Registry:      reg,
	})
	opts := []lusail.Option{lusail.WithObservability(qlog)}
	if cfg.Resilience != nil {
		opts = append(opts, lusail.WithResilience(*cfg.Resilience))
	}
	if cfg.Degradation != lusail.DegradeFail {
		opts = append(opts, lusail.WithDegradation(cfg.Degradation))
	}
	if cfg.QueryBudget > 0 {
		opts = append(opts, lusail.WithQueryBudget(cfg.QueryBudget))
	}
	if cfg.Hedge {
		opts = append(opts, lusail.WithHedging(lusail.DefaultHedge()))
	}
	if cfg.SubqueryCacheSize > 0 {
		opts = append(opts, lusail.WithSubqueryCache(cfg.SubqueryCacheSize, cfg.SubqueryCacheTTL))
	}
	if cfg.CoherenceWindow > 0 {
		opts = append(opts, lusail.WithCoherenceWindow(cfg.CoherenceWindow))
	}
	if cfg.CoherenceObserve {
		opts = append(opts, lusail.WithCoherenceObserve())
	}
	if cfg.CoherenceOff {
		opts = append(opts, lusail.WithoutCoherence())
	}
	if cfg.Statistics {
		if cfg.StatsCalibrate {
			opts = append(opts, lusail.WithCalibration(lusail.StatisticsConfig{}))
		} else {
			opts = append(opts, lusail.WithStatistics(lusail.StatisticsConfig{}))
		}
	}
	if cfg.ReplanOvershoot > 0 {
		opts = append(opts, lusail.WithReplanOvershoot(cfg.ReplanOvershoot))
	}
	if cfg.TraceSample != nil {
		opts = append(opts, lusail.WithTraceSampling(*cfg.TraceSample))
	}
	fed := lusail.New(eps, opts...)
	fed.RegisterMetrics(reg)

	maxQueue := cfg.MaxQueue
	if maxQueue <= 0 {
		maxQueue = 64
	}
	queueWait := cfg.QueueWait
	if queueWait <= 0 {
		queueWait = 2 * time.Second
	}
	adm := newAdmission(cfg.MaxConcurrent, maxQueue, queueWait)
	adm.register(reg)

	s := &server{fed: fed, reg: reg, qlog: qlog, logger: logger, cfg: cfg, adm: adm}

	// SLO engine: always on (a mutex and two adds per query); the
	// /debug/slo route and lusail_slo_* families read it at scrape time.
	s.slo = lusail.NewSLO(cfg.SLO)
	s.slo.Register(reg)

	// Trace export chain: tail sampler in front of the OTLP exporter.
	// Slow, errored, and degraded traces are always kept; head-sampled
	// traces (WithTraceSampling) flow through as usual.
	if cfg.OTLPEndpoint != "" {
		service := cfg.ServiceName
		if service == "" {
			service = "lusail-server"
		}
		s.exporter = lusail.NewSpanExporter(lusail.ExporterConfig{
			Endpoint: cfg.OTLPEndpoint,
			Service:  service,
			Logger:   logger,
		})
		s.exporter.Register(reg)
		slowTrace := cfg.TraceSlowThreshold
		if slowTrace <= 0 {
			slowTrace = cfg.SlowThreshold
		}
		sampler := lusail.NewTraceSampler(lusail.SamplerConfig{
			SlowThreshold: slowTrace,
			KeepErrors:    true,
			KeepDegraded:  true,
			Next:          s.exporter,
		})
		sampler.Register(reg)
		s.sink = sampler
	}

	if cfg.Singleflight {
		s.sf = newSingleflight()
		s.sf.register(reg)
	}
	s.policyKey = fmt.Sprintf("degrade=%d;budget=%s;timeout=%s",
		cfg.Degradation, cfg.QueryBudget, cfg.QueryTimeout)
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/sparql", s.handleQuery)
	s.mux.Handle("/metrics", reg.Handler())
	s.mux.HandleFunc("/healthz", s.handleHealth)
	s.mux.HandleFunc("/readyz", s.handleReady)
	s.mux.Handle("/debug/queries", qlog.DebugHandler())
	s.mux.Handle("/debug/slo", s.slo.Handler())
	s.mux.HandleFunc("/debug/invalidate", s.handleInvalidate)
	s.mux.HandleFunc("/debug/stats", s.handleStats)
	if cfg.EnablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s
}

// probe runs the initial source probing: one ASK against every
// endpoint, in parallel, to warm connections and surface dead
// endpoints at startup. /readyz reports 503 until probing completes
// (probe failures are logged but do not block readiness forever — the
// breakers own steady-state health).
func (s *server) probe(ctx context.Context) {
	eps := s.fed.Endpoints()
	done := make(chan struct{}, len(eps))
	for _, ep := range eps {
		ep := ep
		go func() {
			defer func() { done <- struct{}{} }()
			pctx, cancel := context.WithTimeout(ctx, 10*time.Second)
			defer cancel()
			if _, err := ep.Query(pctx, "ASK { ?s ?p ?o }"); err != nil {
				s.logger.Warn("startup probe failed", "endpoint", ep.Name(), "err", err)
				return
			}
			s.logger.Info("startup probe ok", "endpoint", ep.Name())
		}()
	}
	for range eps {
		<-done
	}
	s.probed.Store(true)
	s.logger.Info("initial source probing complete", "endpoints", len(eps))
}

// handleHealth is the liveness probe: the process is up and serving.
// The body carries per-endpoint detail (breaker state per endpoint)
// as JSON, so a partially degraded federation is visible here while
// /readyz keeps routing traffic to the survivors.
func (s *server) handleHealth(w http.ResponseWriter, r *http.Request) {
	type epHealth struct {
		Name    string `json:"name"`
		Breaker string `json:"breaker,omitempty"`
	}
	states := s.fed.BreakerStates()
	out := struct {
		Status    string     `json:"status"`
		Probed    bool       `json:"probed"`
		Endpoints []epHealth `json:"endpoints"`
	}{Status: "ok", Probed: s.probed.Load()}
	byName := map[string]lusail.BreakerState{}
	for _, b := range states {
		byName[b.Name] = b.State
	}
	for _, ep := range s.fed.Endpoints() {
		h := epHealth{Name: ep.Name()}
		if st, ok := byName[ep.Name()]; ok {
			h.Breaker = breakerName(st)
		}
		out.Endpoints = append(out.Endpoints, h)
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(out)
}

func breakerName(st lusail.BreakerState) string {
	switch st {
	case lusail.BreakerOpen:
		return "open"
	case lusail.BreakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// handleReady is the readiness probe. By default a partially degraded
// federation stays ready: 503 only while initial source probing is
// incomplete, while EVERY endpoint's circuit breaker is open (nothing
// left to answer from), or under sustained admission saturation. With
// StrictReady, any single open breaker reports 503 (the historical
// rule, for deployments that would rather fail over than degrade).
func (s *server) handleReady(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	if !s.probed.Load() {
		http.Error(w, "not ready: initial source probing incomplete", http.StatusServiceUnavailable)
		return
	}
	if s.adm.saturated() {
		http.Error(w, "not ready: admission queue saturated", http.StatusServiceUnavailable)
		return
	}
	if s.cfg.SLOReady && s.slo.Degraded() {
		// Multiwindow burn: an objective is over its burn threshold in
		// BOTH the fast and slow windows — a sustained incident, not a
		// blip. Shed traffic so the balancer routes around this instance.
		http.Error(w, "not ready: SLO error budget burning", http.StatusServiceUnavailable)
		return
	}
	states := s.fed.BreakerStates()
	open := 0
	firstOpen := ""
	for _, b := range states {
		if b.State == lusail.BreakerOpen {
			open++
			if firstOpen == "" {
				firstOpen = b.Name
			}
		}
	}
	if s.cfg.StrictReady && open > 0 {
		http.Error(w, fmt.Sprintf("not ready: circuit breaker open for endpoint %s", firstOpen),
			http.StatusServiceUnavailable)
		return
	}
	if len(states) > 0 && open == len(states) {
		http.Error(w, "not ready: all endpoint circuit breakers open", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprintln(w, "ready")
}

// handleQuery serves the SPARQL protocol for federated queries: GET
// with ?query=, POST with a form-encoded query parameter, or POST
// with an application/sparql-query body. Results are encoded per the
// Accept header (JSON default; XML, CSV, TSV supported).
func (s *server) handleQuery(w http.ResponseWriter, r *http.Request) {
	// Cap the request body before anything reads it: an unbounded
	// io.ReadAll over an attacker-sized body is a trivial memory DoS.
	if r.Method == http.MethodPost {
		max := s.cfg.MaxRequestBytes
		if max == 0 {
			max = lusail.DefaultMaxRequestBytes
		}
		if max > 0 {
			r.Body = http.MaxBytesReader(w, r.Body, max)
		}
	}
	query, err := extractQuery(r)
	if err != nil {
		if errors.Is(err, errMethod) {
			w.Header().Set("Allow", "GET, POST")
			http.Error(w, err.Error(), http.StatusMethodNotAllowed)
			return
		}
		status := http.StatusBadRequest
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			status = http.StatusRequestEntityTooLarge
		}
		http.Error(w, err.Error(), status)
		return
	}

	// A syntactically invalid query is the client's fault: reject it
	// with 400 before it reaches the engine (mirroring the SPARQL
	// protocol's MalformedQuery distinction). The parsed form doubles
	// as the singleflight canonicalization below.
	q, perr := sparql.Parse(query)
	if perr != nil {
		http.Error(w, perr.Error(), http.StatusBadRequest)
		return
	}

	// Admission control: take a query slot (waiting briefly in the
	// bounded queue) or shed the request so overload turns into fast
	// 503s instead of unbounded queueing.
	release, ok := s.adm.acquire(r.Context())
	if !ok {
		w.Header().Set("Retry-After", "1")
		http.Error(w, "server overloaded, retry later", http.StatusServiceUnavailable)
		return
	}
	defer release()

	// r.Context() so a client disconnect cancels the federated query:
	// the engine's streaming executor aborts its in-flight subqueries
	// and the admission slot frees as soon as the handler returns.
	// An inbound W3C traceparent joins the caller's distributed trace:
	// this query's spans carry the caller's trace ID and the federation
	// produces one stitched trace across processes.
	ctx := lusail.ExtractTraceContext(r.Context(), r.Header)
	if s.cfg.QueryTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.QueryTimeout)
		defer cancel()
	}

	// The JSON default streams solution rows as they land; the other
	// formats keep the buffered path (their encoders need the full
	// result anyway, and XML's head carries no row-independent state
	// worth splitting).
	accept := r.Header.Get("Accept")
	buffered := strings.Contains(accept, "application/sparql-results+xml") ||
		strings.Contains(accept, "text/csv") ||
		strings.Contains(accept, "text/tab-separated-values")

	if s.sf == nil {
		s.runQuery(w, ctx, query, accept, buffered, nil)
		return
	}

	// Singleflight: collapse identical concurrent queries onto one
	// engine execution. The key is the canonicalized query text (two
	// spellings of one query collapse) plus the policy context.
	key := q.String() + "\x00" + s.policyKey
	f, follower := s.sf.join(key)
	if follower {
		select {
		case <-ctx.Done():
			return
		case <-f.done:
		}
		if f.err == nil {
			s.writeResult(w, f.res, accept)
			return
		}
		// The leader's failure (possibly its own client hanging up and
		// cancelling its context) is not this request's failure: run
		// the query independently.
		s.runQuery(w, ctx, query, accept, buffered, nil)
		return
	}
	// Leader: execute normally — streaming to this client as usual —
	// while materializing the result for the followers.
	s.runQuery(w, ctx, query, accept, buffered, func(res *lusail.Results, err error) {
		s.sf.finish(key, f, res, err)
	})
}

// finishQuery closes out one traced execution: the terminal error is
// stamped on the root span (the tail sampler's always-keep rule for
// errored traces reads it), the outcome feeds the SLO engine's rolling
// windows, and the trace is handed to the export chain.
func (s *server) finishQuery(tr *lusail.Trace, dur time.Duration, err error) {
	if err != nil && tr != nil {
		tr.Root.Set("error", err.Error())
	}
	s.slo.Record(dur, err != nil)
	if s.sink != nil && tr != nil {
		s.sink.ExportTrace(tr)
	}
}

// runQuery executes one query and writes the response. publish, when
// non-nil, receives the materialized result (or the terminal error)
// exactly once, for singleflight replay to collapsed followers.
func (s *server) runQuery(w http.ResponseWriter, ctx context.Context, query, accept string, buffered bool, publish func(*lusail.Results, error)) {
	if !buffered {
		res, err := s.streamQuery(w, ctx, query, publish != nil)
		if publish != nil {
			publish(res, err)
		}
		return
	}
	// Traced execution so slow queries carry their span tree into the
	// query log's ring buffer and the export chain ships it.
	start := time.Now()
	res, _, tr, err := s.fed.QueryTraced(ctx, query)
	s.finishQuery(tr, time.Since(start), err)
	if err != nil {
		if publish != nil {
			publish(nil, err)
		}
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	if publish != nil {
		publish(res, nil)
	}
	if tr != nil {
		w.Header().Set("X-Lusail-Trace-Id", tr.ID().String())
	}
	s.writeResult(w, res, accept)
}

// writeResult encodes a materialized result per the Accept header —
// the buffered formats' response path, and the replay path for
// singleflight followers (each follower re-encodes for its own
// Accept).
func (s *server) writeResult(w http.ResponseWriter, res *lusail.Results, accept string) {
	if c := res.Completeness; c != nil && !c.Complete {
		w.Header().Set("X-Lusail-Partial-Results", "true")
	}
	var err error
	switch {
	case strings.Contains(accept, "application/sparql-results+xml"):
		w.Header().Set("Content-Type", "application/sparql-results+xml")
		err = res.EncodeXML(w)
	case strings.Contains(accept, "text/csv"):
		w.Header().Set("Content-Type", "text/csv")
		err = res.EncodeCSV(w)
	case strings.Contains(accept, "text/tab-separated-values"):
		w.Header().Set("Content-Type", "text/tab-separated-values")
		err = res.EncodeTSV(w)
	default:
		w.Header().Set("Content-Type", "application/sparql-results+json")
		err = res.EncodeJSON(w)
	}
	if err != nil {
		s.logger.Debug("result encoding failed mid-stream", "err", err)
	}
}

// handleInvalidate is the admin cache-invalidation hook: POST with an
// optional form/query parameter endpoint=<name> drops the cached
// planning decisions and subquery results depending on that endpoint;
// without it, every engine cache is cleared. In-flight computations
// complete for their waiters but are not re-stored.
func (s *server) handleInvalidate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", "POST")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	if err := r.ParseForm(); err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	target := r.Form.Get("endpoint")
	scope := "all"
	if target == "" {
		s.fed.InvalidateCaches()
	} else {
		found := false
		for _, ep := range s.fed.Endpoints() {
			if ep.Name() == target {
				found = true
				break
			}
		}
		if !found {
			http.Error(w, fmt.Sprintf("unknown endpoint %q", target), http.StatusNotFound)
			return
		}
		s.fed.InvalidateEndpointCaches(target)
		scope = target
	}
	s.logger.Info("caches invalidated", "scope", scope)
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Invalidated string `json:"invalidated"`
	}{Invalidated: scope})
}

// handleStats is the statistics service's debug surface: GET returns
// the counter snapshot as JSON; POST re-harvests every endpoint's
// summary first (the admin hook after a known bulk load), then returns
// the fresh snapshot.
func (s *server) handleStats(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
	case http.MethodPost:
		if !s.cfg.Statistics {
			http.Error(w, "statistics service disabled (start with -stats)", http.StatusConflict)
			return
		}
		if err := s.fed.RefreshStatistics(r.Context()); err != nil {
			http.Error(w, err.Error(), http.StatusBadGateway)
			return
		}
	default:
		w.Header().Set("Allow", "GET, POST")
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(struct {
		Enabled     bool                   `json:"enabled"`
		Calibrating bool                   `json:"calibrating"`
		Stats       lusail.StatisticsStats `json:"stats"`
	}{Enabled: s.cfg.Statistics, Calibrating: s.cfg.StatsCalibrate, Stats: s.fed.StatisticsStats()})
}

// refreshStats runs the statistics service's background harvest loop:
// one harvest at startup (so the first queries already plan from
// summaries), then one every StatsRefresh until shutdown. Harvest
// failures are logged and retried at the next tick — the engine just
// keeps probing endpoints for whatever summaries are missing.
func (s *server) refreshStats(ctx context.Context) {
	harvest := func() {
		hctx, cancel := context.WithTimeout(ctx, 2*time.Minute)
		defer cancel()
		if err := s.fed.RefreshStatistics(hctx); err != nil {
			s.logger.Warn("statistics harvest failed", "err", err)
			return
		}
		st := s.fed.StatisticsStats()
		s.logger.Info("statistics harvested",
			"summaries", st.Summaries, "harvest_queries", st.HarvestQueries)
	}
	harvest()
	if s.cfg.StatsRefresh <= 0 {
		return
	}
	t := time.NewTicker(s.cfg.StatsRefresh)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			harvest()
		}
	}
}

// streamQuery serves the SPARQL JSON path with chunked transfer: each
// result chunk is encoded and flushed as the engine produces it, so
// clients see first solutions while phase-2 subqueries are still in
// flight. Because the status line is gone after the first flush,
// end-of-stream conditions travel as HTTP trailers: X-Lusail-Partial-
// Results marks degraded completeness, X-Lusail-Error carries a
// mid-stream failure on a truncated document.
//
// With materialize set (singleflight leaders), the streamed rows are
// additionally buffered and the returned Results carries them, so
// collapsed followers can replay the full result; otherwise the
// returned Results is the engine's summary (row count only).
func (s *server) streamQuery(w http.ResponseWriter, ctx context.Context, query string, materialize bool) (*lusail.Results, error) {
	// Trailers must be declared before the first byte of the body. The
	// trace ID travels as a trailer too: it is minted inside the traced
	// execution, after the status line is gone.
	w.Header().Set("Trailer", "X-Lusail-Partial-Results, X-Lusail-Error, X-Lusail-Trace-Id")
	w.Header().Set("Content-Type", "application/sparql-results+json")

	flusher, canFlush := w.(http.Flusher)
	enc := sparql.NewJSONRowEncoder(w)
	var kept []lusail.Binding
	start := time.Now()
	res, _, tr, err := s.fed.QueryStreamTraced(ctx, query,
		func(vars []lusail.Var, rows []lusail.Binding) error {
			if materialize {
				kept = append(kept, rows...)
			}
			if err := enc.Rows(vars, rows); err != nil {
				return err
			}
			if canFlush {
				flusher.Flush()
			}
			return nil
		})
	s.finishQuery(tr, time.Since(start), err)
	if tr != nil {
		w.Header().Set("X-Lusail-Trace-Id", tr.ID().String())
	}
	if err != nil {
		if !enc.Started() {
			// Nothing written yet: a clean HTTP error is still possible.
			w.Header().Del("Trailer")
			w.Header().Del("Content-Type")
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return nil, err
		}
		w.Header().Set("X-Lusail-Error", err.Error())
		s.logger.Debug("stream failed mid-response", "err", err)
		return nil, err
	}
	if res.AskForm {
		// ASK never streams; the boolean document goes out whole.
		w.Header().Del("Trailer")
		_ = res.EncodeJSON(w)
		return res, nil
	}
	// Close writes a valid empty document when no chunk ever arrived.
	if err := enc.Close(res.Vars); err != nil {
		s.logger.Debug("stream close failed", "err", err)
		// The result itself is complete; only this client's connection
		// failed. Followers can still replay it.
	}
	// Trailer values are picked up from the header map after the body.
	if c := res.Completeness; c != nil && !c.Complete {
		w.Header().Set("X-Lusail-Partial-Results", "true")
	}
	if materialize {
		full := *res
		full.Rows = kept
		full.Streamed = 0
		return &full, nil
	}
	return res, nil
}

var errMethod = errors.New("method not allowed")

// extractQuery pulls the SPARQL query text out of a protocol request.
func extractQuery(r *http.Request) (string, error) {
	switch r.Method {
	case http.MethodGet:
		q := r.URL.Query().Get("query")
		if q == "" {
			return "", fmt.Errorf("missing query parameter")
		}
		return q, nil
	case http.MethodPost:
		if strings.HasPrefix(r.Header.Get("Content-Type"), "application/sparql-query") {
			body, err := io.ReadAll(r.Body)
			if err != nil {
				return "", err
			}
			return string(body), nil
		}
		if err := r.ParseForm(); err != nil {
			return "", err
		}
		q := r.PostForm.Get("query")
		if q == "" {
			return "", fmt.Errorf("missing query parameter")
		}
		return q, nil
	default:
		return "", fmt.Errorf("%w: %s", errMethod, r.Method)
	}
}

// listen opens the daemon's listener.
func (s *server) listen(addr string) (net.Listener, error) {
	return net.Listen("tcp", addr)
}

// serve runs the HTTP server on ln until ctx is cancelled, then
// gracefully drains in-flight queries for up to drain before closing.
// The server is configured with read-header/read/idle timeouts so a
// slowloris client cannot pin connections open.
func (s *server) serve(ctx context.Context, ln net.Listener, drain time.Duration) error {
	srv := &http.Server{
		Handler:           s.mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       30 * time.Second,
		IdleTimeout:       2 * time.Minute,
		ErrorLog:          slog.NewLogLogger(s.logger.Handler(), slog.LevelWarn),
	}
	go s.probe(ctx)
	if s.cfg.Statistics {
		go s.refreshStats(ctx)
	}

	errCh := make(chan error, 1)
	go func() { errCh <- srv.Serve(ln) }()
	s.logger.Info("lusail-server listening", "addr", ln.Addr().String(),
		"endpoints", len(s.fed.Endpoints()))

	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	s.logger.Info("shutting down: draining in-flight queries", "drain", drain)
	dctx, cancel := context.WithTimeout(context.Background(), drain)
	defer cancel()
	if err := srv.Shutdown(dctx); err != nil {
		s.logger.Warn("drain incomplete, closing", "err", err)
		return err
	}
	if s.exporter != nil {
		// Ship whatever the trace queue still holds inside the remaining
		// drain budget; dropped batches are already accounted in the
		// lusail_trace_export_* counters.
		if err := s.exporter.Shutdown(dctx); err != nil {
			s.logger.Warn("trace exporter drain incomplete", "err", err)
		}
	}
	s.logger.Info("shutdown complete")
	return nil
}
