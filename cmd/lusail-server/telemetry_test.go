package main

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"lusail"
	"lusail/internal/endpoint"
)

// otlpSpan is one span as received by the fake collector, flattened
// with its resource's service.name.
type otlpSpan struct {
	Service string
	TraceID string
	SpanID  string
	Parent  string
	Name    string
}

// fakeCollector is an in-process OTLP/HTTP trace collector: it accepts
// POST /v1/traces with the OTLP JSON encoding and records every span.
type fakeCollector struct {
	mu    sync.Mutex
	spans []otlpSpan
	posts int
}

func (c *fakeCollector) handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v1/traces" {
			http.Error(w, "unexpected request", http.StatusNotFound)
			return
		}
		var req struct {
			ResourceSpans []struct {
				Resource struct {
					Attributes []struct {
						Key   string `json:"key"`
						Value struct {
							StringValue string `json:"stringValue"`
						} `json:"value"`
					} `json:"attributes"`
				} `json:"resource"`
				ScopeSpans []struct {
					Spans []struct {
						TraceID      string `json:"traceId"`
						SpanID       string `json:"spanId"`
						ParentSpanID string `json:"parentSpanId"`
						Name         string `json:"name"`
					} `json:"spans"`
				} `json:"scopeSpans"`
			} `json:"resourceSpans"`
		}
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		c.mu.Lock()
		defer c.mu.Unlock()
		c.posts++
		for _, rs := range req.ResourceSpans {
			service := ""
			for _, a := range rs.Resource.Attributes {
				if a.Key == "service.name" {
					service = a.Value.StringValue
				}
			}
			for _, ss := range rs.ScopeSpans {
				for _, sp := range ss.Spans {
					c.spans = append(c.spans, otlpSpan{
						Service: service,
						TraceID: sp.TraceID,
						SpanID:  sp.SpanID,
						Parent:  sp.ParentSpanID,
						Name:    sp.Name,
					})
				}
			}
		}
		w.WriteHeader(http.StatusOK)
	})
}

// snapshot copies the recorded spans.
func (c *fakeCollector) snapshot() (spans []otlpSpan, posts int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]otlpSpan(nil), c.spans...), c.posts
}

// services returns the distinct service names that contributed spans
// to the given trace.
func (c *fakeCollector) services(traceID string) map[string]bool {
	spans, _ := c.snapshot()
	out := map[string]bool{}
	for _, sp := range spans {
		if sp.TraceID == traceID {
			out[sp.Service] = true
		}
	}
	return out
}

// bufferedQuery runs one query over the buffered (XML) response path,
// where the trace ID arrives as a normal header, and returns the
// status, body, and X-Lusail-Trace-Id.
func bufferedQuery(t *testing.T, base, query string) (int, string, string) {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, base+"/sparql?query="+url.QueryEscape(query), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "application/sparql-results+xml")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, string(body), resp.Header.Get("X-Lusail-Trace-Id")
}

// flushExporters drains every exporter into the collector so the
// assertions below see a deterministic span set.
func flushExporters(t *testing.T, exps ...*lusail.SpanExporter) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for _, e := range exps {
		if err := e.Flush(ctx); err != nil {
			t.Fatalf("exporter flush: %v", err)
		}
	}
}

// TestFederationStitchedTrace runs a two-process-style federation —
// the federator talking HTTP to endpoint servers, exactly as separate
// processes would — and asserts the collector receives ONE stitched
// trace: the endpoint processes' server-side spans carry the
// federator's trace ID, propagated via the W3C traceparent header.
func TestFederationStitchedTrace(t *testing.T) {
	col := &fakeCollector{}
	colSrv := httptest.NewServer(col.handler())
	defer colSrv.Close()

	// Endpoint "processes": each local store is mounted behind the
	// SPARQL protocol handler with its own span exporter, reachable
	// only over HTTP.
	var eps []lusail.Endpoint
	var epExporters []*lusail.SpanExporter
	for _, spec := range []struct{ name, doc string }{
		{"epA", "<http://ex/s0> <http://ex/p> \"a0\" .\n<http://ex/s1> <http://ex/p> \"a1\" .\n"},
		{"epB", "<http://ex/t0> <http://ex/q> \"b0\" .\n"},
	} {
		local := loadEndpoint(t, spec.name, spec.doc)
		exp := lusail.NewSpanExporter(lusail.ExporterConfig{
			Endpoint: colSrv.URL,
			Service:  spec.name,
			Logger:   quietLogger(),
		})
		defer exp.Shutdown(context.Background())
		h := lusail.ServeWithConfig(local, lusail.EndpointHandlerConfig{
			Logger:      quietLogger(),
			TraceSink:   exp,
			ServiceName: spec.name,
		})
		epSrv := httptest.NewServer(h)
		defer epSrv.Close()
		eps = append(eps, lusail.ConnectHTTP(spec.name, epSrv.URL))
		epExporters = append(epExporters, exp)
	}

	s := newServer(eps, serverConfig{
		Logger:       quietLogger(),
		OTLPEndpoint: colSrv.URL,
		ServiceName:  "lusail-server",
	})
	ts := httptest.NewServer(s.mux)
	defer ts.Close()
	s.probe(context.Background())

	status, body, traceID := bufferedQuery(t, ts.URL,
		`SELECT ?s ?o WHERE { ?s <http://ex/p> ?o }`)
	if status != http.StatusOK {
		t.Fatalf("query status %d: %s", status, body)
	}
	if len(traceID) != 32 {
		t.Fatalf("X-Lusail-Trace-Id = %q, want a 32-hex trace ID", traceID)
	}

	flushExporters(t, append(epExporters, s.exporter)...)

	// One stitched trace: the federator's root trace ID appears in
	// spans exported by BOTH sides of the federation.
	got := col.services(traceID)
	if !got["lusail-server"] {
		t.Errorf("no federator spans for trace %s (services: %v)", traceID, got)
	}
	if !got["epA"] {
		t.Errorf("endpoint epA exported no server-side span joined to trace %s (services: %v)", traceID, got)
	}
	spans, posts := col.snapshot()
	if posts == 0 {
		t.Fatal("collector received no OTLP batches")
	}
	if st := s.exporter.Stats(); st.Batches == 0 || st.Exported == 0 {
		t.Errorf("exporter stats %+v, want batches and exported spans > 0", st)
	}
	// Every endpoint-side span must parent into the federator's tree,
	// not float as its own root.
	for _, sp := range spans {
		if sp.TraceID == traceID && sp.Service == "epA" && sp.Parent == "" {
			t.Errorf("endpoint span %s/%s has no parent: trace not stitched", sp.Name, sp.SpanID)
		}
	}

	// Inbound propagation: a caller-supplied traceparent joins this
	// server's spans to the caller's trace (federation-of-federations).
	const callerTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	req, _ := http.NewRequest(http.MethodGet,
		ts.URL+"/sparql?query="+url.QueryEscape(`SELECT ?s WHERE { ?s <http://ex/p> ?o }`), nil)
	req.Header.Set("Accept", "application/sparql-results+xml")
	req.Header.Set(lusail.TraceparentHeader, "00-"+callerTrace+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if got := resp.Header.Get("X-Lusail-Trace-Id"); got != callerTrace {
		t.Errorf("joined trace ID = %q, want caller's %q", got, callerTrace)
	}
	flushExporters(t, s.exporter)
	if got := col.services(callerTrace); !got["lusail-server"] {
		t.Errorf("no spans exported under the caller's trace ID (services: %v)", got)
	}
}

// TestTailSamplingRetainsSlowDropsFast sets head sampling to 0 — no
// trace is head-sampled — and asserts the tail sampler still keeps a
// deliberately slowed query while the fast one is dropped.
func TestTailSamplingRetainsSlowDropsFast(t *testing.T) {
	col := &fakeCollector{}
	colSrv := httptest.NewServer(col.handler())
	defer colSrv.Close()

	ep := loadEndpoint(t, "epA",
		"<http://ex/s0> <http://ex/p> \"a0\" .\n<http://ex/s0> <http://ex/q> \"b0\" .\n")
	zero := 0.0
	s := newServer([]lusail.Endpoint{ep}, serverConfig{
		Logger:             quietLogger(),
		OTLPEndpoint:       colSrv.URL,
		TraceSample:        &zero,
		TraceSlowThreshold: 50 * time.Millisecond,
	})
	ts := httptest.NewServer(s.mux)
	defer ts.Close()
	s.probe(context.Background())

	// Fast query: in-process endpoint, no simulated network. Head says
	// drop (ratio 0), tail finds nothing keep-worthy.
	status, body, fastID := bufferedQuery(t, ts.URL, `SELECT ?s WHERE { ?s <http://ex/p> ?o }`)
	if status != http.StatusOK {
		t.Fatalf("fast query status %d: %s", status, body)
	}

	// Slow query: a simulated 100ms RTT pushes the root span past the
	// tail sampler's threshold. A fresh predicate bypasses the ASK
	// cache so the endpoint round-trip really happens.
	ep.WithNetwork(lusail.NetworkProfile{RTT: 100 * time.Millisecond})
	status, body, slowID := bufferedQuery(t, ts.URL, `SELECT ?s WHERE { ?s <http://ex/q> ?o }`)
	if status != http.StatusOK {
		t.Fatalf("slow query status %d: %s", status, body)
	}

	flushExporters(t, s.exporter)
	spans, _ := col.snapshot()
	var sawSlow, sawFast bool
	for _, sp := range spans {
		switch sp.TraceID {
		case slowID:
			sawSlow = true
		case fastID:
			sawFast = true
		}
	}
	if !sawSlow {
		t.Errorf("slow query's trace %s was not retained by the tail sampler", slowID)
	}
	if sawFast {
		t.Errorf("fast query's trace %s was exported despite sampling 0", fastID)
	}

	_, page := get(t, ts.URL+"/metrics")
	if got := metricValue(t, page, `lusail_trace_sampled_total{decision="kept_slow"}`); got != 1 {
		t.Errorf("kept_slow = %v, want 1", got)
	}
	if got := metricValue(t, page, `lusail_trace_sampled_total{decision="dropped"}`); got != 1 {
		t.Errorf("dropped = %v, want 1", got)
	}
}

// TestOpenMetricsExemplarsReferenceRetainedTrace asserts /metrics with
// the OpenMetrics Accept header carries exemplars whose trace_id is a
// trace the export chain retained — the link a metrics UI follows from
// a latency bucket to the stored trace.
func TestOpenMetricsExemplarsReferenceRetainedTrace(t *testing.T) {
	col := &fakeCollector{}
	colSrv := httptest.NewServer(col.handler())
	defer colSrv.Close()

	s := newServer(testEndpoints(t), serverConfig{
		Logger:       quietLogger(),
		OTLPEndpoint: colSrv.URL, // sample-all: every trace is retained
	})
	ts := httptest.NewServer(s.mux)
	defer ts.Close()
	s.probe(context.Background())

	status, body, traceID := bufferedQuery(t, ts.URL, `SELECT ?s ?o WHERE { ?s <http://ex/p> ?o }`)
	if status != http.StatusOK {
		t.Fatalf("query status %d: %s", status, body)
	}
	flushExporters(t, s.exporter)
	if got := col.services(traceID); !got["lusail-server"] {
		t.Fatalf("trace %s was not exported; exemplars would dangle", traceID)
	}

	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "openmetrics-text") {
		t.Fatalf("Content-Type = %q, want openmetrics-text", ct)
	}
	text := string(page)
	if !strings.HasSuffix(strings.TrimRight(text, "\n"), "# EOF") {
		t.Errorf("OpenMetrics page missing # EOF terminator")
	}
	want := `# {trace_id="` + traceID + `"}`
	if !strings.Contains(text, want) {
		t.Errorf("/metrics has no exemplar %s:\n%s", want, text)
	}
	// The exemplar must hang off the query latency histogram.
	var onHistogram bool
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "lusail_query_duration_seconds_bucket") && strings.Contains(line, want) {
			onHistogram = true
		}
	}
	if !onHistogram {
		t.Errorf("no lusail_query_duration_seconds bucket carries the exemplar %s", want)
	}
}

// TestSLOBurnRateUnderFaults injects endpoint failures and asserts the
// SLO engine reports a positive availability burn rate on /debug/slo,
// flips the degraded flag, and (with SLOReady) degrades /readyz.
func TestSLOBurnRateUnderFaults(t *testing.T) {
	eps := testEndpoints(t)
	down := endpoint.NewFaulty(eps[0], endpoint.FaultConfig{Down: true})
	s := newServer([]lusail.Endpoint{down, eps[1]}, serverConfig{
		Logger:   quietLogger(),
		SLOReady: true,
	})
	ts := httptest.NewServer(s.mux)
	defer ts.Close()
	s.probe(context.Background())
	waitReady(t, ts)

	// Every query needs the downed endpoint, so every query fails and
	// burns availability budget.
	for i := 0; i < 4; i++ {
		status, _, _ := bufferedQuery(t, ts.URL, `SELECT ?s ?o WHERE { ?s <http://ex/p> ?o }`)
		if status != http.StatusInternalServerError {
			t.Fatalf("fault-injected query %d status %d, want 500", i, status)
		}
	}

	status, body := get(t, ts.URL+"/debug/slo")
	if status != http.StatusOK {
		t.Fatalf("/debug/slo status %d", status)
	}
	var st lusail.SLOStatus
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("/debug/slo JSON: %v\n%s", err, body)
	}
	if !st.Degraded {
		t.Errorf("/debug/slo degraded = false after 100%% failures:\n%s", body)
	}
	var avail bool
	for _, o := range st.Objectives {
		if o.Name != "availability" {
			continue
		}
		avail = true
		for _, w := range o.Windows {
			if w.BurnRate <= 0 {
				t.Errorf("availability %s-window burn rate %v, want > 0", w.Window, w.BurnRate)
			}
			if w.Bad == 0 || w.Total == 0 {
				t.Errorf("availability %s window counted %d/%d bad/total, want > 0", w.Window, w.Bad, w.Total)
			}
		}
		if !o.Burning {
			t.Errorf("availability objective not burning at 100%% failure rate")
		}
	}
	if !avail {
		t.Fatalf("/debug/slo has no availability objective:\n%s", body)
	}

	_, page := get(t, ts.URL+"/metrics")
	if got := metricValue(t, page, "lusail_slo_degraded"); got != 1 {
		t.Errorf("lusail_slo_degraded = %v, want 1", got)
	}
	if got := metricValue(t, page, `lusail_slo_burn_rate{slo="availability",window="fast"}`); got <= 0 {
		t.Errorf("lusail_slo_burn_rate fast = %v, want > 0", got)
	}

	// SLOReady: the burning budget sheds this instance from rotation.
	status, body = get(t, ts.URL+"/readyz")
	if status != http.StatusServiceUnavailable || !strings.Contains(body, "SLO") {
		t.Errorf("/readyz with burning SLO = %d %q, want 503 naming the SLO", status, body)
	}
}
