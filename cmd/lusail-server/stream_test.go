package main

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"lusail"
	"lusail/internal/sparql"
)

// blockingEndpoint passes planning traffic (source-selection ASKs,
// cardinality COUNT probes) through to its inner endpoint but parks
// every data-fetching SELECT until the query context is cancelled,
// recording that the cancellation reached it.
type blockingEndpoint struct {
	inner    lusail.Endpoint
	observed chan struct{}
	once     sync.Once
}

func (b *blockingEndpoint) Name() string { return b.inner.Name() }

func (b *blockingEndpoint) Query(ctx context.Context, query string) (*lusail.Results, error) {
	if strings.HasPrefix(strings.TrimSpace(query), "ASK") || strings.Contains(query, "COUNT(") {
		return b.inner.Query(ctx, query)
	}
	<-ctx.Done()
	b.once.Do(func() { close(b.observed) })
	return nil, ctx.Err()
}

// A client that walks away mid-stream must cancel the federated query
// (in-flight subqueries see ctx.Done) and give its admission slot
// back. This is the contract that makes streaming safe to expose: a
// hung or disconnected reader cannot pin endpoint work or a query
// slot.
func TestStreamClientDisconnectCancelsQuery(t *testing.T) {
	fast := loadEndpoint(t, "fastEP",
		`<http://ex/s0> <http://ex/p> "a0" .
<http://ex/s1> <http://ex/p> "a1" .`)
	slowInner := loadEndpoint(t, "slowEP", `<http://ex/s2> <http://ex/p> "b0" .`)
	blocked := &blockingEndpoint{inner: slowInner, observed: make(chan struct{})}

	s := newServer([]lusail.Endpoint{fast, blocked}, serverConfig{
		Logger:        quietLogger(),
		MaxConcurrent: 1, // enables in-flight accounting
	})
	ts := httptest.NewServer(s.mux)
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	q := url.QueryEscape(`SELECT ?s ?o WHERE { ?s <http://ex/p> ?o }`)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, ts.URL+"/sparql?query="+q, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Do returns once response headers arrive — which, on the
	// streaming path, happens at the first flushed chunk (fastEP's
	// rows) while the blocked endpoint still holds phase 1 open.
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatalf("request failed before first chunk: %v", err)
	}
	defer resp.Body.Close()
	buf := make([]byte, 64)
	if _, err := resp.Body.Read(buf); err != nil {
		t.Fatalf("reading first chunk: %v", err)
	}
	if !strings.Contains(string(buf), `"head"`) {
		t.Errorf("first chunk does not open a SPARQL JSON document: %q", buf)
	}
	if n := s.adm.inflight.Load(); n != 1 {
		t.Errorf("in-flight = %d mid-stream, want 1", n)
	}

	// Walk away.
	cancel()
	io.Copy(io.Discard, resp.Body)

	select {
	case <-blocked.observed:
	case <-time.After(5 * time.Second):
		t.Fatal("blocked endpoint never observed cancellation after client disconnect")
	}
	// The handler returns and the admission slot frees.
	deadline := time.Now().Add(5 * time.Second)
	for s.adm.inflight.Load() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("admission slot never released: in-flight = %d", s.adm.inflight.Load())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// The streaming JSON path must deliver the same document the buffered
// encoder would, chunking notwithstanding, and report mid-query
// degradation through the declared trailer fields.
func TestStreamedJSONDocumentWellFormed(t *testing.T) {
	s := newServer(testEndpoints(t), serverConfig{Logger: quietLogger()})
	ts := httptest.NewServer(s.mux)
	defer ts.Close()

	q := url.QueryEscape(`SELECT ?s ?o WHERE { ?s <http://ex/p> ?o }`)
	resp, err := http.Get(ts.URL + "/sparql?query=" + q)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Content-Type"); got != "application/sparql-results+json" {
		t.Errorf("Content-Type = %q", got)
	}
	// Trailers were declared up front and, absent degradation or a
	// mid-stream error, stay unset after the body.
	if got := resp.Trailer.Get("X-Lusail-Error"); got != "" {
		t.Errorf("X-Lusail-Error trailer = %q, want unset", got)
	}
	res, err := sparql.DecodeJSONStream(strings.NewReader(string(body)))
	if err != nil {
		t.Fatalf("streamed document does not decode: %v\n%s", err, body)
	}
	if res.Len() != 5 {
		t.Errorf("decoded %d rows, want 5", res.Len())
	}
}
