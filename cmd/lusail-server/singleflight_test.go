package main

import (
	"context"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"
	"time"

	"lusail"
)

// Concurrent identical queries collapse onto one engine execution;
// every caller still gets a complete response encoded per its own
// Accept header.
func TestSingleflightCollapsesConcurrentIdenticalQueries(t *testing.T) {
	// A simulated 250ms RTT keeps the leader's execution in flight long
	// enough for the followers to pile onto it.
	slow := loadEndpoint(t, "slowEP", `<http://ex/s> <http://ex/p> "v" .`).
		WithNetwork(lusail.NetworkProfile{RTT: 250 * time.Millisecond})
	s := newServer([]lusail.Endpoint{slow}, serverConfig{
		Logger:       quietLogger(),
		Singleflight: true,
	})
	ts := httptest.NewServer(s.mux)
	defer ts.Close()
	s.probe(context.Background())

	const followers = 6
	leaderQ := `SELECT ?s WHERE { ?s <http://ex/p> ?o }`
	// Same query, different surface text: the key is the canonicalized
	// parse, so this must still collapse onto the leader's flight.
	followerQ := "SELECT ?s\nWHERE {\n  ?s <http://ex/p> ?o .\n}"

	type reply struct {
		status   int
		ct, body string
	}
	replies := make(chan reply, followers+1)
	fire := func(q, accept string) {
		req, _ := http.NewRequest(http.MethodGet, ts.URL+"/sparql?query="+url.QueryEscape(q), nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			replies <- reply{status: -1, body: err.Error()}
			return
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		replies <- reply{resp.StatusCode, resp.Header.Get("Content-Type"), string(body)}
	}
	go fire(leaderQ, "")
	// Let the leader get on the wire before the followers arrive.
	time.Sleep(50 * time.Millisecond)
	for i := 0; i < followers; i++ {
		accept := ""
		if i == 0 {
			accept = "text/csv" // followers replay in their own format
		}
		go fire(followerQ, accept)
	}

	csvSeen := false
	for i := 0; i < followers+1; i++ {
		r := <-replies
		if r.status != http.StatusOK {
			t.Fatalf("reply %d: status %d: %s", i, r.status, r.body)
		}
		if !strings.Contains(r.body, "http://ex/s") {
			t.Errorf("reply %d missing bindings: %s", i, r.body)
		}
		if strings.HasPrefix(r.ct, "text/csv") {
			csvSeen = true
		}
	}
	if !csvSeen {
		t.Error("follower with Accept: text/csv did not receive CSV")
	}

	_, page := get(t, ts.URL+"/metrics")
	leaders := metricValue(t, page, "lusail_server_singleflight_leaders_total")
	collapsed := metricValue(t, page, "lusail_server_singleflight_collapsed_total")
	if leaders+collapsed != followers+1 {
		t.Errorf("leaders(%v) + collapsed(%v) != %d requests", leaders, collapsed, followers+1)
	}
	if collapsed == 0 {
		t.Error("no request collapsed onto the in-flight execution")
	}
	// Only leaders reach the engine: the query counter and the query
	// log must both see exactly the leader executions.
	if got := metricValue(t, page, "lusail_queries_total"); got != leaders {
		t.Errorf("lusail_queries_total = %v, want %v (one per leader)", got, leaders)
	}
	if got := len(s.qlog.Recent()); got != int(leaders) {
		t.Errorf("query log has %d records, want %v", got, leaders)
	}
}

// With singleflight disabled every request executes independently.
func TestSingleflightDisabled(t *testing.T) {
	s := newServer(testEndpoints(t), serverConfig{Logger: quietLogger()})
	ts := httptest.NewServer(s.mux)
	defer ts.Close()
	s.probe(context.Background())

	q := url.QueryEscape(`SELECT ?s WHERE { ?s <http://ex/p> ?o }`)
	for i := 0; i < 2; i++ {
		if status, body := get(t, ts.URL+"/sparql?query="+q); status != http.StatusOK {
			t.Fatalf("query %d: %d %s", i, status, body)
		}
	}
	_, page := get(t, ts.URL+"/metrics")
	if got := metricValue(t, page, "lusail_queries_total"); got != 2 {
		t.Errorf("lusail_queries_total = %v, want 2", got)
	}
	if strings.Contains(page, "lusail_server_singleflight_leaders_total") {
		t.Error("singleflight metrics registered while disabled")
	}
}

// The /debug/invalidate admin route drops the persistent caches, and
// the lusail_cache_* families track reuse across requests.
func TestDebugInvalidateDropsCaches(t *testing.T) {
	s := newServer(testEndpoints(t), serverConfig{
		Logger:            quietLogger(),
		SubqueryCacheSize: 64,
		SubqueryCacheTTL:  time.Minute,
	})
	ts := httptest.NewServer(s.mux)
	defer ts.Close()
	s.probe(context.Background())

	// Two identical queries back to back; the second reuses the first's
	// phase-1 result. (Buffered CSV path: a single-pattern query is the
	// streaming tail, which is deliberately never cached.)
	for i := 0; i < 2; i++ {
		req, _ := http.NewRequest(http.MethodGet,
			ts.URL+"/sparql?query="+url.QueryEscape(`SELECT ?s ?o WHERE { ?s <http://ex/p> ?o }`), nil)
		req.Header.Set("Accept", "text/csv")
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("query %d: %d %s", i, resp.StatusCode, body)
		}
	}
	_, page := get(t, ts.URL+"/metrics")
	if got := metricValue(t, page, `lusail_cache_hits_total{cache="subquery"}`); got == 0 {
		t.Error("repeated query produced no subquery-cache hits")
	}
	if got := metricValue(t, page, `lusail_cache_entries{cache="subquery"}`); got == 0 {
		t.Fatal("no subquery-cache entries after two queries")
	}

	// Wrong method: 405 with Allow.
	if status, _ := get(t, ts.URL+"/debug/invalidate"); status != http.StatusMethodNotAllowed {
		t.Errorf("GET /debug/invalidate status %d, want 405", status)
	}
	// Unknown endpoint: 404.
	resp, err := http.PostForm(ts.URL+"/debug/invalidate", url.Values{"endpoint": {"nope"}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("invalidate unknown endpoint status %d, want 404", resp.StatusCode)
	}
	// Endpoint-scoped invalidation succeeds.
	resp, err = http.PostForm(ts.URL+"/debug/invalidate", url.Values{"endpoint": {"epA"}})
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "epA") {
		t.Errorf("scoped invalidate: %d %s", resp.StatusCode, body)
	}
	// Full invalidation empties the subquery cache.
	resp, err = http.PostForm(ts.URL+"/debug/invalidate", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "all") {
		t.Errorf("full invalidate: %d %s", resp.StatusCode, body)
	}
	_, page = get(t, ts.URL+"/metrics")
	if got := metricValue(t, page, `lusail_cache_entries{cache="subquery"}`); got != 0 {
		t.Errorf("lusail_cache_entries after invalidate = %v, want 0", got)
	}
}
