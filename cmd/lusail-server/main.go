// Command lusail-server is the long-running federation daemon: it
// loads (or points at) a federation of SPARQL endpoints and serves
// federated queries over the SPARQL protocol, together with the
// operational surface a production deployment needs:
//
//	/sparql         SPARQL protocol (GET ?query=, POST form, POST application/sparql-query)
//	/metrics        Prometheus text-format exposition (queries, phases, per-endpoint stats, breakers)
//	/healthz        liveness (process up) with per-endpoint breaker detail as JSON
//	/readyz         readiness (503 while probing, while ALL breakers are open, or under
//	                sustained admission saturation; -strict-ready restores the historical
//	                any-open-breaker rule)
//	/debug/queries  recent + slow queries (slow ones with rendered span trees and trace IDs), JSON
//	/debug/slo      SLO burn-rate snapshot (availability + latency objectives, fast/slow windows), JSON
//	/debug/invalidate  POST drops the engine caches (endpoint=<name> scopes to one endpoint)
//	/debug/stats    statistics-service snapshot as JSON (POST re-harvests; with -stats)
//	/debug/pprof/   net/http/pprof (with -pprof)
//
// With -otlp-endpoint, every query records a W3C-identified span tree:
// inbound traceparent headers are joined (one stitched trace across a
// federation of lusail processes), outgoing endpoint requests propagate
// the context, and completed traces are tail-sampled (slow, errored,
// and degraded traces always kept) and shipped to the collector in
// batches.
//
// Endpoints are given as repeated -endpoint flags, each either an
// http(s):// SPARQL endpoint URL or a path to a local N-Triples file
// (loaded in process):
//
//	lusail-server -addr :8080 -endpoint http://host1:8001 -endpoint data/univ1.nt
//
// SIGINT/SIGTERM drain in-flight queries (bounded by -drain) before
// exit.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"time"

	"lusail"
)

type endpointFlags []string

func (e *endpointFlags) String() string { return strings.Join(*e, ",") }
func (e *endpointFlags) Set(v string) error {
	*e = append(*e, v)
	return nil
}

func main() {
	var endpoints endpointFlags
	var (
		addr         = flag.String("addr", ":8080", "listen address")
		slow         = flag.Duration("slow", 500*time.Millisecond, "slow-query threshold (0 disables slow-query capture)")
		ringSize     = flag.Int("ring", 128, "recent/slow query ring-buffer size")
		queryTimeout = flag.Duration("query-timeout", 5*time.Minute, "per-query timeout")
		maxReqBytes  = flag.Int64("max-request-bytes", 0, "cap on POST request bodies; oversized requests get 413 (0 = default 4MiB, negative = unlimited)")
		drain        = flag.Duration("drain", 30*time.Second, "graceful-shutdown drain budget for in-flight queries")
		resilience   = flag.Bool("resilience", true, "enable endpoint retries and circuit breakers")
		pprofOn      = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/")
		logJSON      = flag.Bool("log-json", false, "emit logs as JSON instead of text")
		logLevel     = flag.String("log-level", "info", "log level: debug | info | warn | error")

		maxConcurrent = flag.Int("max-concurrent", 0, "max concurrently executing queries (0 = unlimited)")
		maxQueue      = flag.Int("max-queue", 64, "max requests waiting for a query slot")
		queueWait     = flag.Duration("queue-wait", 2*time.Second, "max time a request waits for a query slot")
		strictReady   = flag.Bool("strict-ready", false, "report /readyz 503 while ANY breaker is open (historical rule)")
		degrade       = flag.String("degrade", "fail", "degradation policy: fail | skip-endpoint | best-effort")
		queryBudget   = flag.Duration("query-budget", 0, "per-query wall-clock budget (0 = none; best-effort returns partial results)")
		hedge         = flag.Bool("hedge", false, "hedge slow phase-1 subqueries with one backup request")

		sqCache      = flag.Int("subquery-cache", 0, "persistent cross-query subquery-result cache entries (0 disables)")
		sqCacheTTL   = flag.Duration("subquery-cache-ttl", time.Minute, "TTL of cached subquery results (0 = no expiry)")
		singleflight = flag.Bool("singleflight", true, "collapse concurrent identical queries into one execution")

		coherenceWindow = flag.Duration("coherence-window", 0, "how long a data-version probe stays trusted (0 = probe every query)")
		coherenceMode   = flag.String("coherence", "enforce", "cache-coherence fence mode: enforce | observe | off")

		statsOn        = flag.Bool("stats", false, "harvest per-endpoint statistics summaries so warmed queries plan without endpoint probes")
		statsRefresh   = flag.Duration("stats-refresh", 15*time.Minute, "background statistics re-harvest interval (0 = harvest once at startup)")
		statsCalibrate = flag.Bool("stats-calibrate", false, "self-tune cardinality estimates from estimated-vs-actual feedback (implies -stats)")
		replanFactor   = flag.Float64("replan-overshoot", 0, "re-plan mid-query when a phase-1 result exceeds its estimate by this factor (0 disables)")

		otlpEndpoint = flag.String("otlp-endpoint", "", "OTLP/HTTP collector base URL for trace export (empty disables)")
		serviceName  = flag.String("service-name", "lusail-server", "service.name stamped on exported spans")
		traceSample  = flag.Float64("trace-sample", 1, "head-sampling ratio for locally-rooted traces (0..1; slow/errored/degraded traces are always kept)")
		traceSlow    = flag.Duration("trace-slow", 0, "tail sampler's always-keep latency threshold (0 = use -slow)")

		sloAvail        = flag.Float64("slo-availability", 0.99, "availability objective: fraction of queries that must succeed")
		sloLatTarget    = flag.Float64("slo-latency-target", 0.99, "latency objective: fraction of queries that must finish under -slo-latency-threshold")
		sloLatThreshold = flag.Duration("slo-latency-threshold", time.Second, "latency objective's cut-off")
		sloFastWindow   = flag.Duration("slo-fast-window", 5*time.Minute, "fast burn-rate evaluation window")
		sloSlowWindow   = flag.Duration("slo-slow-window", time.Hour, "slow burn-rate evaluation window")
		sloBurn         = flag.Float64("slo-burn-threshold", 1, "burn rate at which an objective counts as burning (both windows must exceed it)")
		sloReady        = flag.Bool("slo-ready", false, "report /readyz 503 while any SLO objective burns past the threshold in both windows")
	)
	flag.Var(&endpoints, "endpoint", "endpoint URL or N-Triples file (repeatable)")
	flag.Parse()

	logger, err := buildLogger(*logJSON, *logLevel)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	if len(endpoints) == 0 {
		fmt.Fprintln(os.Stderr, "at least one -endpoint is required")
		flag.Usage()
		os.Exit(2)
	}

	eps, err := loadEndpoints(endpoints)
	if err != nil {
		logger.Error("loading endpoints", "err", err)
		os.Exit(1)
	}

	policy, err := lusail.ParseDegradePolicy(*degrade)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	switch *coherenceMode {
	case "enforce", "observe", "off":
	default:
		fmt.Fprintf(os.Stderr, "invalid -coherence mode %q (want enforce | observe | off)\n", *coherenceMode)
		os.Exit(2)
	}

	cfg := serverConfig{
		Logger:          logger,
		SlowThreshold:   *slow,
		RingSize:        *ringSize,
		QueryTimeout:    *queryTimeout,
		MaxRequestBytes: *maxReqBytes,
		EnablePprof:     *pprofOn,
		MaxConcurrent:   *maxConcurrent,
		MaxQueue:        *maxQueue,
		QueueWait:       *queueWait,
		StrictReady:     *strictReady,
		Degradation:     policy,
		QueryBudget:     *queryBudget,
		Hedge:           *hedge,

		SubqueryCacheSize: *sqCache,
		SubqueryCacheTTL:  *sqCacheTTL,
		Singleflight:      *singleflight,

		CoherenceWindow:  *coherenceWindow,
		CoherenceObserve: *coherenceMode == "observe",
		CoherenceOff:     *coherenceMode == "off",

		Statistics:      *statsOn || *statsCalibrate,
		StatsRefresh:    *statsRefresh,
		StatsCalibrate:  *statsCalibrate,
		ReplanOvershoot: *replanFactor,

		OTLPEndpoint:       *otlpEndpoint,
		ServiceName:        *serviceName,
		TraceSlowThreshold: *traceSlow,
		SLO: lusail.SLOConfig{
			AvailabilityTarget: *sloAvail,
			LatencyTarget:      *sloLatTarget,
			LatencyThreshold:   *sloLatThreshold,
			FastWindow:         *sloFastWindow,
			SlowWindow:         *sloSlowWindow,
			DegradeThreshold:   *sloBurn,
		},
		SLOReady: *sloReady,
	}
	if *traceSample < 1 {
		cfg.TraceSample = traceSample
	}
	if *resilience {
		rc := lusail.DefaultResilience()
		cfg.Resilience = &rc
	}
	s := newServer(eps, cfg)

	ln, err := s.listen(*addr)
	if err != nil {
		logger.Error("listen", "addr", *addr, "err", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := s.serve(ctx, ln, *drain); err != nil {
		logger.Error("server exited", "err", err)
		os.Exit(1)
	}
}

// loadEndpoints resolves each -endpoint spec: URLs become HTTP
// clients, paths are loaded as in-process N-Triples endpoints.
func loadEndpoints(specs []string) ([]lusail.Endpoint, error) {
	var eps []lusail.Endpoint
	for _, spec := range specs {
		if strings.HasPrefix(spec, "http://") || strings.HasPrefix(spec, "https://") {
			eps = append(eps, lusail.ConnectHTTP(spec, spec))
			continue
		}
		f, err := os.Open(spec)
		if err != nil {
			return nil, err
		}
		name := strings.TrimSuffix(filepath.Base(spec), filepath.Ext(spec))
		ep, err := lusail.LoadEndpoint(name, f)
		f.Close()
		if err != nil {
			return nil, err
		}
		eps = append(eps, ep)
	}
	return eps, nil
}

func buildLogger(jsonOut bool, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("invalid -log-level %q", level)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	var h slog.Handler
	if jsonOut {
		h = slog.NewJSONHandler(os.Stderr, opts)
	} else {
		h = slog.NewTextHandler(os.Stderr, opts)
	}
	return slog.New(h), nil
}
