package main

import (
	"context"
	"sync/atomic"
	"time"

	"lusail/internal/obs"
)

// admission is the daemon's load-shedding front door: a bounded pool
// of query slots plus a bounded, deadline-aware wait queue. Requests
// that cannot get a slot within the queue-wait budget (or that find
// the queue itself full) are shed with 503 so overload degrades into
// fast rejections instead of unbounded latency.
type admission struct {
	limit     int           // concurrent query slots (<=0 disables admission control)
	maxQueue  int           // waiters allowed to queue for a slot
	queueWait time.Duration // longest a waiter holds its queue spot

	slots chan struct{}

	inflight atomic.Int64
	peak     atomic.Int64 // high-water mark of inflight
	queued   atomic.Int64
	shed     atomic.Int64

	// fullSince is the unix-nano timestamp since which the queue has
	// been continuously full (0 = not full). Readiness only reports
	// saturation after the queue has stayed full for satWindow, so a
	// short burst sheds load without flapping /readyz.
	fullSince atomic.Int64

	now func() time.Time // injectable clock for tests
}

// satWindow is how long the wait queue must stay full before the
// admission controller reports saturation to /readyz.
const satWindow = 10 * time.Second

// newAdmission builds the controller. limit <= 0 returns a disabled
// controller whose acquire always admits.
func newAdmission(limit, maxQueue int, queueWait time.Duration) *admission {
	a := &admission{limit: limit, maxQueue: maxQueue, queueWait: queueWait, now: time.Now}
	if limit > 0 {
		a.slots = make(chan struct{}, limit)
	}
	return a
}

// acquire tries to admit one query. On admission it returns a release
// function (which must be called exactly once) and true; on shed it
// records the rejection and returns false.
func (a *admission) acquire(ctx context.Context) (func(), bool) {
	if a.limit <= 0 {
		return func() {}, true
	}
	select {
	case a.slots <- struct{}{}:
		return a.admitted(), true
	default:
	}
	// No free slot: take a queue spot if one is left.
	if q := a.queued.Add(1); q > int64(a.maxQueue) {
		a.queued.Add(-1)
		a.fullSince.CompareAndSwap(0, a.now().UnixNano())
		a.shed.Add(1)
		return nil, false
	}
	defer a.queued.Add(-1)
	wait := time.NewTimer(a.queueWait)
	defer wait.Stop()
	select {
	case a.slots <- struct{}{}:
		a.fullSince.Store(0)
		return a.admitted(), true
	case <-wait.C:
	case <-ctx.Done():
	}
	a.shed.Add(1)
	return nil, false
}

// admitted bumps the in-flight accounting and returns the release.
func (a *admission) admitted() func() {
	n := a.inflight.Add(1)
	for {
		p := a.peak.Load()
		if n <= p || a.peak.CompareAndSwap(p, n) {
			break
		}
	}
	var done atomic.Bool
	return func() {
		if done.Swap(true) {
			return
		}
		a.inflight.Add(-1)
		<-a.slots
		a.fullSince.Store(0)
	}
}

// saturated reports whether the wait queue has been continuously full
// for at least satWindow — the signal /readyz uses to mark the server
// unready under sustained (not momentary) overload.
func (a *admission) saturated() bool {
	if a.limit <= 0 {
		return false
	}
	since := a.fullSince.Load()
	return since != 0 && a.now().Sub(time.Unix(0, since)) >= satWindow
}

// register exposes the controller's live state as metric families:
// the configured limit, in-flight and queued gauges, the in-flight
// high-water mark, and the shed-request counter.
func (a *admission) register(reg *obs.Registry) {
	reg.RegisterCollector(func() []obs.Family {
		gauge := func(name, help string, v float64) obs.Family {
			return obs.Family{Name: name, Help: help, Kind: "gauge",
				Samples: []obs.Sample{{Value: v}}}
		}
		return []obs.Family{
			gauge("lusail_admission_limit", "Configured concurrent-query limit (0 = unlimited).",
				float64(a.limit)),
			gauge("lusail_server_inflight_queries", "Queries currently executing.",
				float64(a.inflight.Load())),
			gauge("lusail_server_inflight_peak", "High-water mark of concurrently executing queries.",
				float64(a.peak.Load())),
			gauge("lusail_server_queued_queries", "Requests waiting for a query slot.",
				float64(a.queued.Load())),
			{Name: "lusail_shed_requests_total", Help: "Requests rejected by admission control.",
				Kind: "counter", Samples: []obs.Sample{{Value: float64(a.shed.Load())}}},
		}
	})
}
