// Command lusail runs one federated SPARQL query. Endpoints are given
// as repeated -endpoint flags, each either an http(s):// SPARQL
// endpoint URL or a path to a local N-Triples file (loaded in
// process):
//
//	lusail -endpoint http://host1:8001 -endpoint data/univ1.nt \
//	       -query 'SELECT * WHERE { ?s ?p ?o } LIMIT 5'
//
// The -engine flag switches between Lusail and the reimplemented
// baselines; -profile prints per-phase metrics for Lusail.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"lusail"
)

type endpointFlags []string

func (e *endpointFlags) String() string { return strings.Join(*e, ",") }
func (e *endpointFlags) Set(v string) error {
	*e = append(*e, v)
	return nil
}

func main() {
	var endpoints endpointFlags
	var (
		query     = flag.String("query", "", "SPARQL query text")
		queryFile = flag.String("query-file", "", "file containing the SPARQL query")
		engine    = flag.String("engine", "lusail", "lusail | fedx | splendid | hibiscus | naive")
		timeout   = flag.Duration("timeout", 5*time.Minute, "query timeout")
		profile   = flag.Bool("profile", false, "print phase metrics (lusail only)")
		explain   = flag.Bool("explain", false, "print the execution plan instead of running the query (lusail only)")
		format    = flag.String("format", "table", "output format: table | csv | tsv | json | xml")
	)
	flag.Var(&endpoints, "endpoint", "endpoint URL or N-Triples file (repeatable)")
	flag.Parse()

	if len(endpoints) == 0 {
		log.Fatal("at least one -endpoint is required")
	}
	text := *query
	if *queryFile != "" {
		b, err := os.ReadFile(*queryFile)
		if err != nil {
			log.Fatal(err)
		}
		text = string(b)
	}
	if text == "" {
		log.Fatal("a -query or -query-file is required")
	}

	var eps []lusail.Endpoint
	for _, spec := range endpoints {
		if strings.HasPrefix(spec, "http://") || strings.HasPrefix(spec, "https://") {
			eps = append(eps, lusail.ConnectHTTP(spec, spec))
			continue
		}
		f, err := os.Open(spec)
		if err != nil {
			log.Fatalf("open %s: %v", spec, err)
		}
		name := strings.TrimSuffix(filepath.Base(spec), filepath.Ext(spec))
		ep, err := lusail.LoadEndpoint(name, f)
		f.Close()
		if err != nil {
			log.Fatalf("load %s: %v", spec, err)
		}
		eps = append(eps, ep)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()

	if *explain {
		if *engine != "lusail" {
			log.Fatal("-explain is only supported with -engine lusail")
		}
		plan, err := lusail.New(eps).Explain(ctx, text)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(plan.String())
		return
	}

	start := time.Now()

	var res *lusail.Results
	var fed *lusail.Federation
	var err error
	if *engine == "lusail" {
		fed = lusail.New(eps)
		res, err = fed.Query(ctx, text)
	} else {
		eng, berr := lusail.NewBaseline(*engine, eps)
		if berr != nil {
			log.Fatal(berr)
		}
		res, err = eng.Execute(ctx, text)
	}
	elapsed := time.Since(start)
	if err != nil {
		log.Fatalf("query failed: %v", err)
	}

	switch *format {
	case "csv":
		err = res.EncodeCSV(os.Stdout)
	case "tsv":
		err = res.EncodeTSV(os.Stdout)
	case "json":
		err = res.EncodeJSON(os.Stdout)
	case "xml":
		err = res.EncodeXML(os.Stdout)
	case "table":
		if res.AskForm {
			fmt.Println(res.Ask)
			break
		}
		fmt.Println(strings.Join(varNames(res), "\t"))
		for _, row := range res.Rows {
			var cells []string
			for _, v := range res.Vars {
				if t, ok := row[v]; ok {
					cells = append(cells, t.String())
				} else {
					cells = append(cells, "")
				}
			}
			fmt.Println(strings.Join(cells, "\t"))
		}
	default:
		log.Fatalf("unknown format %q", *format)
	}
	if err != nil {
		log.Fatalf("writing results: %v", err)
	}
	fmt.Fprintf(os.Stderr, "# %d rows in %s via %s\n", res.Len(), elapsed, *engine)
	if *profile && fed != nil {
		m := fed.Metrics()
		fmt.Fprintf(os.Stderr, "# source selection %s  analysis %s  execution %s\n",
			m.SourceSelection, m.Analysis, m.Execution)
		fmt.Fprintf(os.Stderr, "# subqueries %d (%d delayed)  GJVs %d  remote requests %d\n",
			m.Subqueries, m.Delayed, m.GJVs, m.RemoteRequests())
	}
}

func varNames(res *lusail.Results) []string {
	out := make([]string, len(res.Vars))
	for i, v := range res.Vars {
		out[i] = "?" + string(v)
	}
	return out
}
