// Command lusail-bench regenerates the paper's tables and figures:
//
//	lusail-bench -exp fig12            # one experiment
//	lusail-bench -exp all -scale 2     # everything, bigger datasets
//
// Available experiments: table1, prep, fig3, fig9, fig10a, fig10bc,
// fig11, fig12, fig13, fig14, bio, ablade, absape, mqo, scale,
// faults, degrade, workload, chaos, stats, all. Each prints the
// rows/series the corresponding figure or table reports; see
// EXPERIMENTS.md for the mapping and expected shapes.
//
// Observability modes (run instead of -exp when set):
//
//	lusail-bench -trace                      # span trees + EXPLAIN ANALYZE on LUBM
//	lusail-bench -bench-json BENCH_PR2.json  # per-query latency percentiles
//	lusail-bench -pprof :6060 -exp fig12     # pprof listener during any run
//	lusail-bench -bench-json B.json -metrics-dump -   # dump the Prometheus
//	                                         # metrics page after the run
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"
	"time"

	"lusail/internal/endpoint"
	"lusail/internal/experiments"
	"lusail/internal/obs"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment id ("+strings.Join(experiments.RegistryNames(), ", ")+")")
		scale     = flag.Int("scale", 1, "dataset scale factor")
		timeout   = flag.Duration("timeout", 60*time.Second, "per-query timeout (paper: 1h)")
		runs      = flag.Int("runs", 1, "repetitions per measurement (paper: 3)")
		wan       = flag.Bool("wan", false, "simulate WAN latency on all experiments")
		traceDump = flag.Bool("trace", false, "execute the LUBM queries and dump each span tree with EXPLAIN ANALYZE")
		benchJSON = flag.String("bench-json", "", "write per-query latency percentiles (LUBM) to this JSON file")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof on this address (e.g. :6060) while running")
		metricsTo = flag.String("metrics-dump", "", `write the Prometheus metrics page here after -trace/-bench-json runs ("-" = stdout)`)
		otlp      = flag.String("otlp-endpoint", "", "OTLP/HTTP collector base URL to ship -trace span trees to (empty disables)")
	)
	flag.Parse()

	opts := experiments.Options{Scale: *scale, Timeout: *timeout, Runs: *runs}
	if *wan {
		opts.Network = endpoint.WANProfile
	}
	if *metricsTo != "" {
		opts.Metrics = obs.NewRegistry()
	}
	var exporter *obs.SpanExporter
	if *otlp != "" {
		exporter = obs.NewSpanExporter(obs.ExporterConfig{
			Endpoint: *otlp,
			Service:  "lusail-bench",
		})
		opts.TraceSink = exporter
	}

	if *pprofAddr != "" {
		go func() {
			log.Printf("pprof listening on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("pprof listener: %v", err)
			}
		}()
	}

	start := time.Now()
	switch {
	case *traceDump:
		if err := experiments.TraceDump(os.Stdout, opts); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ncompleted trace in %s\n", time.Since(start).Round(time.Millisecond))
	case *benchJSON != "":
		out, err := os.Create(*benchJSON)
		if err != nil {
			log.Fatal(err)
		}
		if err := experiments.BenchJSON(out, opts); err != nil {
			out.Close()
			log.Fatal(err)
		}
		if err := out.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("wrote %s in %s\n", *benchJSON, time.Since(start).Round(time.Millisecond))
	default:
		runner, ok := experiments.Registry[*exp]
		if !ok {
			log.Fatalf("unknown experiment %q; available: %s", *exp, strings.Join(experiments.RegistryNames(), ", "))
		}
		if err := runner(os.Stdout, opts); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\ncompleted %s in %s\n", *exp, time.Since(start).Round(time.Millisecond))
	}

	if opts.Metrics != nil {
		if err := dumpMetrics(*metricsTo, opts.Metrics); err != nil {
			log.Fatal(err)
		}
	}
	if exporter != nil {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := exporter.Shutdown(ctx); err != nil {
			log.Printf("trace exporter drain incomplete: %v", err)
		}
	}
}

// dumpMetrics writes the registry's Prometheus text exposition to path
// ("-" = stdout), so a bench run's counters can be compared against a
// live lusail-server /metrics scrape.
func dumpMetrics(path string, reg *obs.Registry) error {
	if path == "-" {
		return reg.WriteText(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WriteText(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
