// Command lusail-bench regenerates the paper's tables and figures:
//
//	lusail-bench -exp fig12            # one experiment
//	lusail-bench -exp all -scale 2     # everything, bigger datasets
//
// Available experiments: table1, prep, fig3, fig9, fig10a, fig10bc,
// fig11, fig12, fig13, fig14, bio, ablade, absape, mqo, scale,
// faults, all. Each prints the rows/series the corresponding figure
// or table reports; see EXPERIMENTS.md for the mapping and expected
// shapes.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"lusail/internal/endpoint"
	"lusail/internal/experiments"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment id ("+strings.Join(experiments.RegistryNames(), ", ")+")")
		scale   = flag.Int("scale", 1, "dataset scale factor")
		timeout = flag.Duration("timeout", 60*time.Second, "per-query timeout (paper: 1h)")
		runs    = flag.Int("runs", 1, "repetitions per measurement (paper: 3)")
		wan     = flag.Bool("wan", false, "simulate WAN latency on all experiments")
	)
	flag.Parse()

	runner, ok := experiments.Registry[*exp]
	if !ok {
		log.Fatalf("unknown experiment %q; available: %s", *exp, strings.Join(experiments.RegistryNames(), ", "))
	}
	opts := experiments.Options{Scale: *scale, Timeout: *timeout, Runs: *runs}
	if *wan {
		opts.Network = endpoint.WANProfile
	}
	start := time.Now()
	if err := runner(os.Stdout, opts); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncompleted %s in %s\n", *exp, time.Since(start).Round(time.Millisecond))
}
