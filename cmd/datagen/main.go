// Command datagen writes the synthetic benchmark datasets as
// N-Triples files, one file per endpoint:
//
//	datagen -benchmark lubm -universities 4 -out ./data
//	datagen -benchmark qfed -out ./data
//	datagen -benchmark largerdf -scale 2 -out ./data
//	datagen -benchmark bio -out ./data
//
// The files can then be served with cmd/endpoint and queried with
// cmd/lusail.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"lusail/internal/benchdata/bio"
	"lusail/internal/benchdata/largerdf"
	"lusail/internal/benchdata/lubm"
	"lusail/internal/benchdata/qfed"
	"lusail/internal/rdf"
)

func main() {
	var (
		benchmark    = flag.String("benchmark", "lubm", "lubm | qfed | largerdf | bio")
		out          = flag.String("out", "data", "output directory")
		universities = flag.Int("universities", 4, "LUBM: number of universities")
		scale        = flag.Int("scale", 1, "dataset scale factor")
		seed         = flag.Int64("seed", 42, "generation seed")
	)
	flag.Parse()

	var graphs []rdf.Graph
	var names []string
	switch *benchmark {
	case "lubm":
		cfg := lubm.DefaultConfig(*universities)
		cfg.Scale = *scale
		cfg.Seed = *seed
		graphs = lubm.Generate(cfg)
		for i := range graphs {
			names = append(names, fmt.Sprintf("university%d", i))
		}
	case "qfed":
		cfg := qfed.DefaultConfig()
		cfg.Drugs *= *scale
		cfg.Seed = *seed
		graphs = qfed.Generate(cfg)
		names = qfed.EndpointNames
	case "largerdf":
		graphs = largerdf.Generate(largerdf.Config{Scale: *scale, Seed: *seed})
		names = largerdf.EndpointNames
	case "bio":
		cfg := bio.DefaultConfig()
		cfg.Genes *= *scale
		cfg.Seed = *seed
		graphs = bio.Generate(cfg)
		names = bio.EndpointNames
	default:
		log.Fatalf("unknown benchmark %q", *benchmark)
	}

	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatal(err)
	}
	total := 0
	for i, g := range graphs {
		path := filepath.Join(*out, strings.ToLower(names[i])+".nt")
		f, err := os.Create(path)
		if err != nil {
			log.Fatal(err)
		}
		if err := rdf.WriteNTriples(f, g); err != nil {
			log.Fatal(err)
		}
		if err := f.Close(); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-40s %8d triples\n", path, len(g))
		total += len(g)
	}
	fmt.Printf("%-40s %8d triples\n", "total", total)
}
