// Command lusail-benchcmp gates microbenchmark regressions: it parses
// `go test -bench -benchmem` output from stdin and compares each
// benchmark's ns/op and allocs/op against a committed baseline JSON,
// failing (exit 1) when either regresses past -max-ratio.
//
//	go test ./internal/... -run NONE -bench . -benchmem | lusail-benchcmp -baseline BENCH_ALLOC_BASELINE.json
//
// -update rewrites the baseline from the measured numbers instead of
// comparing. -skip-time compares only allocs/op, which is
// deterministic and therefore safe on noisy shared CI runners where
// wall-clock ratios are not.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result is one benchmark measurement. FirstRowNsPerOp is the
// streaming executor's custom time-to-first-chunk metric (reported
// via b.ReportMetric as "first-row-ns/op"); zero when a benchmark
// does not emit it.
type result struct {
	NsPerOp         float64 `json:"ns_per_op"`
	BytesPerOp      float64 `json:"bytes_per_op"`
	AllocsPerOp     float64 `json:"allocs_per_op"`
	FirstRowNsPerOp float64 `json:"first_row_ns_per_op,omitempty"`
}

// baseline is the committed reference file.
type baseline struct {
	Note       string            `json:"note,omitempty"`
	Benchmarks map[string]result `json:"benchmarks"`
}

func main() {
	var (
		baselinePath = flag.String("baseline", "", "baseline JSON file to compare against (required)")
		update       = flag.Bool("update", false, "rewrite the baseline from stdin instead of comparing")
		maxRatio     = flag.Float64("max-ratio", 2.0, "fail when current/baseline exceeds this for ns/op or allocs/op")
		skipTime     = flag.Bool("skip-time", false, "compare only allocs/op (deterministic), not ns/op (noisy on shared runners)")
	)
	flag.Parse()
	if *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "-baseline is required")
		flag.Usage()
		os.Exit(2)
	}

	current, err := parseBench(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "parsing benchmark output:", err)
		os.Exit(2)
	}
	if len(current) == 0 {
		fmt.Fprintln(os.Stderr, "no benchmark lines on stdin (run with -bench . -benchmem)")
		os.Exit(2)
	}

	if *update {
		b := baseline{
			Note:       "Microbenchmark baseline for `make bench-compare`. Regenerate with `make bench-baseline`.",
			Benchmarks: current,
		}
		buf, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		if err := os.WriteFile(*baselinePath, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(2)
		}
		fmt.Printf("wrote %d benchmarks to %s\n", len(current), *baselinePath)
		return
	}

	raw, err := os.ReadFile(*baselinePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "reading baseline:", err)
		os.Exit(2)
	}
	var base baseline
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintln(os.Stderr, "parsing baseline:", err)
		os.Exit(2)
	}

	regressions := compare(os.Stdout, base.Benchmarks, current, *maxRatio, *skipTime)
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "%d benchmark regression(s) past %.1fx baseline\n", regressions, *maxRatio)
		os.Exit(1)
	}
}

// parseBench extracts benchmark results from `go test -bench -benchmem`
// output. The "-8" GOMAXPROCS suffix is stripped so baselines are
// portable across machines with different core counts.
func parseBench(r io.Reader) (map[string]result, error) {
	out := map[string]result{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndexByte(name, '-'); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		var res result
		seen := false
		for i := 2; i+1 < len(fields); i++ {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "ns/op":
				res.NsPerOp, seen = v, true
			case "B/op":
				res.BytesPerOp = v
			case "allocs/op":
				res.AllocsPerOp = v
			case "first-row-ns/op":
				res.FirstRowNsPerOp = v
			}
		}
		if seen {
			out[name] = res
		}
	}
	return out, sc.Err()
}

// compare prints a per-benchmark report and returns the number of
// regressions past maxRatio.
func compare(w io.Writer, base, current map[string]result, maxRatio float64, skipTime bool) int {
	names := make([]string, 0, len(current))
	for name := range current {
		names = append(names, name)
	}
	sort.Strings(names)

	regressions := 0
	for _, name := range names {
		cur := current[name]
		b, ok := base[name]
		if !ok {
			fmt.Fprintf(w, "%-40s new (no baseline): %s\n", name, fmtResult(cur))
			continue
		}
		var faults []string
		if !skipTime && exceeds(cur.NsPerOp, b.NsPerOp, maxRatio) {
			faults = append(faults, fmt.Sprintf("ns/op %.0f -> %.0f (%.2fx)", b.NsPerOp, cur.NsPerOp, cur.NsPerOp/b.NsPerOp))
		}
		if exceeds(cur.AllocsPerOp, b.AllocsPerOp, maxRatio) {
			faults = append(faults, fmt.Sprintf("allocs/op %.0f -> %.0f (%.2fx)", b.AllocsPerOp, cur.AllocsPerOp, cur.AllocsPerOp/b.AllocsPerOp))
		}
		// First-row latency is wall clock, so it shares the -skip-time
		// escape hatch for noisy shared runners.
		if !skipTime && exceeds(cur.FirstRowNsPerOp, b.FirstRowNsPerOp, maxRatio) {
			faults = append(faults, fmt.Sprintf("first-row-ns/op %.0f -> %.0f (%.2fx)", b.FirstRowNsPerOp, cur.FirstRowNsPerOp, cur.FirstRowNsPerOp/b.FirstRowNsPerOp))
		}
		if len(faults) > 0 {
			regressions++
			fmt.Fprintf(w, "%-40s REGRESSION: %s\n", name, strings.Join(faults, "; "))
		} else {
			fmt.Fprintf(w, "%-40s ok: %s\n", name, fmtResult(cur))
		}
	}
	for name := range base {
		if _, ok := current[name]; !ok {
			fmt.Fprintf(w, "%-40s missing from current run (baseline stale?)\n", name)
		}
	}
	return regressions
}

// exceeds reports cur > ratio*base, with a small absolute floor so
// single-digit baselines (5 allocs/op) are not failed by +1-2 counts
// of measurement jitter.
func exceeds(cur, base, ratio float64) bool {
	if base <= 0 {
		return false
	}
	threshold := base * ratio
	if floor := base + 16; floor > threshold {
		threshold = floor
	}
	return cur > threshold
}

func fmtResult(r result) string {
	return fmt.Sprintf("%.0f ns/op, %.0f B/op, %.0f allocs/op", r.NsPerOp, r.BytesPerOp, r.AllocsPerOp)
}
