package main

import (
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: lusail/internal/core
cpu: AMD EPYC
BenchmarkHashJoin10k-8       	      21	  10043160 ns/op	 7579752 B/op	   21088 allocs/op
BenchmarkHashJoin10kSerial-8 	      25	   9914589 ns/op	 7455022 B/op	   21041 allocs/op
BenchmarkBindingKey          	 1559046	       163.6 ns/op	     144 B/op	       1 allocs/op
PASS
ok  	lusail/internal/core	1.120s
`

func TestParseBench(t *testing.T) {
	got, err := parseBench(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3", len(got))
	}
	// The -8 GOMAXPROCS suffix must be stripped.
	hj, ok := got["BenchmarkHashJoin10k"]
	if !ok {
		t.Fatalf("BenchmarkHashJoin10k missing (keys: %v)", keys(got))
	}
	if hj.NsPerOp != 10043160 || hj.BytesPerOp != 7579752 || hj.AllocsPerOp != 21088 {
		t.Fatalf("wrong values: %+v", hj)
	}
	// A benchmark name without a suffix parses as-is.
	bk, ok := got["BenchmarkBindingKey"]
	if !ok {
		t.Fatal("BenchmarkBindingKey missing")
	}
	if bk.NsPerOp != 163.6 || bk.AllocsPerOp != 1 {
		t.Fatalf("wrong values: %+v", bk)
	}
}

func keys(m map[string]result) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestCompareFlagsRegressions(t *testing.T) {
	base := map[string]result{
		"BenchmarkA": {NsPerOp: 1000, AllocsPerOp: 100},
		"BenchmarkB": {NsPerOp: 1000, AllocsPerOp: 100},
		"BenchmarkC": {NsPerOp: 1000, AllocsPerOp: 100},
	}
	current := map[string]result{
		"BenchmarkA": {NsPerOp: 1500, AllocsPerOp: 120},  // within 2x: ok
		"BenchmarkB": {NsPerOp: 2500, AllocsPerOp: 100},  // ns/op 2.5x: regression
		"BenchmarkC": {NsPerOp: 1000, AllocsPerOp: 300},  // allocs/op 3x: regression
		"BenchmarkD": {NsPerOp: 9999, AllocsPerOp: 9999}, // new: not a failure
	}
	var sb strings.Builder
	if got := compare(&sb, base, current, 2.0, false); got != 2 {
		t.Fatalf("regressions = %d, want 2 (output:\n%s)", got, sb.String())
	}
	// skip-time ignores the ns/op regression in B.
	sb.Reset()
	if got := compare(&sb, base, current, 2.0, true); got != 1 {
		t.Fatalf("regressions with -skip-time = %d, want 1 (output:\n%s)", got, sb.String())
	}
}

func TestExceedsAbsoluteFloor(t *testing.T) {
	// Tiny baselines get an absolute +16 floor: 5 -> 12 allocs is
	// jitter, not a 2.4x regression.
	if exceeds(12, 5, 2.0) {
		t.Fatal("12 vs baseline 5 should be within the absolute floor")
	}
	if !exceeds(30, 5, 2.0) {
		t.Fatal("30 vs baseline 5 should regress")
	}
	if exceeds(100, 0, 2.0) {
		t.Fatal("zero baseline must never fail")
	}
}

func TestCompareMissingBenchmarkIsNotRegression(t *testing.T) {
	base := map[string]result{"BenchmarkGone": {NsPerOp: 1, AllocsPerOp: 1}}
	current := map[string]result{"BenchmarkNew": {NsPerOp: 1, AllocsPerOp: 1}}
	var sb strings.Builder
	if got := compare(&sb, base, current, 2.0, false); got != 0 {
		t.Fatalf("regressions = %d, want 0", got)
	}
	if !strings.Contains(sb.String(), "missing from current run") {
		t.Fatalf("expected stale-baseline note, got:\n%s", sb.String())
	}
}
