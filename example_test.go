package lusail_test

import (
	"context"
	"fmt"
	"strings"

	"lusail"
)

// Two tiny endpoints: people live at epA, city data at epB, so the
// join variable ?city is global — answering requires the interlink.
const exampleA = `<http://ex/alice> <http://ex/livesIn> <http://ex/paris> .
<http://ex/bob> <http://ex/livesIn> <http://ex/berlin> .
`

const exampleB = `<http://ex/paris> <http://ex/country> "FR" .
<http://ex/berlin> <http://ex/country> "DE" .
`

func ExampleNew() {
	epA, _ := lusail.LoadEndpoint("people", strings.NewReader(exampleA))
	epB, _ := lusail.LoadEndpoint("cities", strings.NewReader(exampleB))
	fed := lusail.New([]lusail.Endpoint{epA, epB})

	res, err := fed.Query(context.Background(), `
		SELECT ?p ?c WHERE {
			?p <http://ex/livesIn> ?city .
			?city <http://ex/country> ?c .
		} ORDER BY ?p`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	for _, row := range res.Rows {
		fmt.Println(row["p"].Value, row["c"].Value)
	}
	// Output:
	// http://ex/alice FR
	// http://ex/bob DE
}

func ExampleFederation_Explain() {
	epA, _ := lusail.LoadEndpoint("people", strings.NewReader(exampleA))
	epB, _ := lusail.LoadEndpoint("cities", strings.NewReader(exampleB))
	fed := lusail.New([]lusail.Endpoint{epA, epB})

	plan, err := fed.Explain(context.Background(), `
		SELECT ?p ?c WHERE {
			?p <http://ex/livesIn> ?city .
			?city <http://ex/country> ?c .
		}`)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("global join variables:", len(plan.GJVs))
	fmt.Println("subqueries:", len(plan.Subqueries))
	// Output:
	// global join variables: 1
	// subqueries: 2
}

func ExampleFederation_Query_ask() {
	epA, _ := lusail.LoadEndpoint("people", strings.NewReader(exampleA))
	fed := lusail.New([]lusail.Endpoint{epA})
	res, _ := fed.Query(context.Background(), `ASK { <http://ex/alice> <http://ex/livesIn> ?c }`)
	fmt.Println(res.Ask)
	// Output:
	// true
}
