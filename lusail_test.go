package lusail

import (
	"context"
	"net/http/httptest"
	"strings"
	"testing"

	"lusail/internal/rdf"
)

const ep1Data = `<http://ex/Lee> <http://ex/advisor> <http://ex/Ben> .
<http://ex/Ben> <http://ex/PhDDegreeFrom> <http://ex/MIT> .
<http://ex/MIT> <http://ex/address> "XXX" .
`

const ep2Data = `<http://ex/Kim> <http://ex/advisor> <http://ex/Tim> .
<http://ex/Tim> <http://ex/PhDDegreeFrom> <http://ex/MIT> .
`

const crossQuery = `SELECT ?s ?a WHERE {
	?s <http://ex/advisor> ?p .
	?p <http://ex/PhDDegreeFrom> ?u .
	?u <http://ex/address> ?a .
}`

func twoEndpoints(t *testing.T) (*MemoryEndpoint, *MemoryEndpoint) {
	t.Helper()
	ep1, err := LoadEndpoint("ep1", strings.NewReader(ep1Data))
	if err != nil {
		t.Fatal(err)
	}
	ep2, err := LoadEndpoint("ep2", strings.NewReader(ep2Data))
	if err != nil {
		t.Fatal(err)
	}
	return ep1, ep2
}

func TestFederationQueryAcrossEndpoints(t *testing.T) {
	ep1, ep2 := twoEndpoints(t)
	fed := New([]Endpoint{ep1, ep2})
	res, err := fed.Query(context.Background(), crossQuery)
	if err != nil {
		t.Fatal(err)
	}
	// Lee (local chain at ep1) and Kim (Tim's MIT address lives at
	// ep1: the interlink).
	if res.Len() != 2 {
		t.Fatalf("rows = %d, want 2: %v", res.Len(), res.Rows)
	}
	m := fed.Metrics()
	if m.Subqueries == 0 || m.Total() <= 0 {
		t.Errorf("metrics incomplete: %+v", m)
	}
	if len(fed.Endpoints()) != 2 {
		t.Error("Endpoints() wrong")
	}
}

func TestOptionsApply(t *testing.T) {
	ep1, ep2 := twoEndpoints(t)
	fed := New([]Endpoint{ep1, ep2},
		WithDelayPolicy(DelayMu2Sigma),
		WithBindBlockSize(5),
		WithWorkers(2),
		WithoutCache(),
	)
	if _, err := fed.Query(context.Background(), crossQuery); err != nil {
		t.Fatal(err)
	}
}

func TestLoadEndpointErrors(t *testing.T) {
	if _, err := LoadEndpoint("bad", strings.NewReader("not ntriples")); err == nil {
		t.Error("bad N-Triples accepted")
	}
}

func TestNewEndpointAndStore(t *testing.T) {
	ep := NewEndpoint("fresh")
	ep.Store().Add(rdf.T(rdf.IRI("http://ex/a"), rdf.IRI("http://ex/p"), rdf.Literal("v")))
	res, err := ep.Query(context.Background(), `ASK { ?s <http://ex/p> "v" }`)
	if err != nil || !res.Ask {
		t.Errorf("ask = %+v err=%v", res, err)
	}
}

func TestServeAndConnectHTTP(t *testing.T) {
	ep1, ep2 := twoEndpoints(t)
	srv1 := httptest.NewServer(Serve(ep1))
	defer srv1.Close()
	srv2 := httptest.NewServer(Serve(ep2))
	defer srv2.Close()

	fed := New([]Endpoint{
		ConnectHTTP("ep1", srv1.URL),
		ConnectHTTP("ep2", srv2.URL),
	})
	res, err := fed.Query(context.Background(), crossQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Errorf("rows over HTTP = %d, want 2", res.Len())
	}
}

func TestNewBaseline(t *testing.T) {
	ep1, ep2 := twoEndpoints(t)
	eps := []Endpoint{ep1, ep2}
	for _, name := range []string{"fedx", "splendid", "hibiscus", "naive"} {
		eng, err := NewBaseline(name, eps)
		if err != nil {
			t.Errorf("%s: %v", name, err)
			continue
		}
		res, err := eng.Execute(context.Background(), crossQuery)
		if err != nil {
			t.Errorf("%s execute: %v", name, err)
			continue
		}
		if res.Len() != 2 {
			t.Errorf("%s rows = %d, want 2", name, res.Len())
		}
	}
	if _, err := NewBaseline("nope", eps); err == nil {
		t.Error("unknown baseline accepted")
	}
}

func TestAskThroughPublicAPI(t *testing.T) {
	ep1, ep2 := twoEndpoints(t)
	fed := New([]Endpoint{ep1, ep2})
	res, err := fed.Query(context.Background(), `ASK { <http://ex/Tim> <http://ex/PhDDegreeFrom> ?u }`)
	if err != nil || !res.AskForm || !res.Ask {
		t.Errorf("ask = %+v err = %v", res, err)
	}
}

func TestExplainThroughPublicAPI(t *testing.T) {
	ep1, ep2 := twoEndpoints(t)
	fed := New([]Endpoint{ep1, ep2})
	plan, err := fed.Explain(context.Background(), crossQuery)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Subqueries) < 2 {
		t.Errorf("plan subqueries = %d, want >= 2", len(plan.Subqueries))
	}
	if !strings.Contains(plan.String(), "subquery") {
		t.Errorf("plan text = %q", plan.String())
	}
}

func TestQueryBatchThroughPublicAPI(t *testing.T) {
	ep1, ep2 := twoEndpoints(t)
	fed := New([]Endpoint{ep1, ep2})
	batch := fed.QueryBatch(context.Background(), []string{crossQuery, crossQuery})
	if len(batch) != 2 {
		t.Fatalf("batch = %d results", len(batch))
	}
	for i, br := range batch {
		if br.Err != nil {
			t.Errorf("batch %d: %v", i, br.Err)
			continue
		}
		if br.Results.Len() != 2 {
			t.Errorf("batch %d rows = %d, want 2", i, br.Results.Len())
		}
	}
	if fed.Metrics().SharedSubqueries == 0 {
		t.Error("identical batch queries should share subquery executions")
	}
}

func TestObservabilityThroughPublicAPI(t *testing.T) {
	ep1, ep2 := twoEndpoints(t)
	fed := New([]Endpoint{ep1, ep2}, WithInstrumentation())
	ctx := context.Background()

	res, m, err := fed.QueryMetrics(ctx, crossQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 || m.RemoteRequests() == 0 {
		t.Errorf("rows = %d, requests = %d", res.Len(), m.RemoteRequests())
	}

	res, m, tr, err := fed.QueryTraced(ctx, crossQuery)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 || m.Total() <= 0 {
		t.Errorf("traced rows = %d, total = %s", res.Len(), m.Total())
	}
	if tr == nil || !strings.Contains(tr.String(), "phase1") {
		t.Fatalf("trace missing phase1 span:\n%s", tr.String())
	}

	an, err := fed.ExplainAnalyze(ctx, crossQuery)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(an.String(), "→ actual") {
		t.Errorf("analysis text missing actuals:\n%s", an.String())
	}

	stats := fed.EndpointStats()
	if len(stats) != 2 {
		t.Fatalf("endpoint stats = %d entries, want 2", len(stats))
	}
	for _, es := range stats {
		if es.Stats.Latency.Count() == 0 {
			t.Errorf("%s: no latency observations despite WithInstrumentation", es.Name)
		}
	}
}
