// Package lusail is a federated SPARQL query processor over
// decentralized RDF graphs, reproducing "Query Optimizations over
// Decentralized RDF Graphs" (ICDE 2017). Queries are optimized with
// locality-aware decomposition (LADE) at compile time and
// selectivity-aware parallel execution (SAPE) at run time.
//
// Quick start:
//
//	ep1, _ := lusail.LoadEndpoint("uni1", strings.NewReader(ntriples1))
//	ep2, _ := lusail.LoadEndpoint("uni2", strings.NewReader(ntriples2))
//	fed := lusail.New([]lusail.Endpoint{ep1, ep2})
//	res, err := fed.Query(ctx, `SELECT ?s WHERE { ?s <http://ex/p> ?o }`)
//
// Endpoints may be in-process (LoadEndpoint), optionally with a
// simulated network profile, or remote SPARQL endpoints over HTTP
// (ConnectHTTP). Serve exposes an in-process endpoint over the SPARQL
// protocol so federations can span real processes.
package lusail

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"lusail/internal/baseline/fedx"
	"lusail/internal/baseline/hibiscus"
	"lusail/internal/baseline/splendid"
	"lusail/internal/core"
	"lusail/internal/endpoint"
	"lusail/internal/federation"
	"lusail/internal/obs"
	"lusail/internal/rdf"
	"lusail/internal/sparql"
	"lusail/internal/stats"
	"lusail/internal/store"
	"lusail/internal/trace"
)

// Endpoint is one SPARQL endpoint of the decentralized graph.
type Endpoint = endpoint.Endpoint

// Results is a SPARQL result set (solution rows, or a boolean for ASK
// queries).
type Results = sparql.Results

// Binding is one solution row.
type Binding = sparql.Binding

// Var is a SPARQL variable name.
type Var = sparql.Var

// Metrics profiles one query execution: per-phase durations and remote
// request counts.
type Metrics = core.Metrics

// NetworkProfile simulates the link between the federator and an
// in-process endpoint (round-trip latency plus bandwidth).
type NetworkProfile = endpoint.NetworkProfile

// Predefined network profiles.
var (
	// LAN approximates a 1 Gb local cluster.
	LAN = endpoint.LANProfile
	// WAN approximates cross-region public-cloud links.
	WAN = endpoint.WANProfile
)

// DelayPolicy selects the SAPE threshold for delaying low-selectivity
// subqueries.
type DelayPolicy = core.DelayPolicy

// Delay policies (the paper adopts DelayMuSigma, Fig. 9).
const (
	DelayMuSigma      = core.DelayMuSigma
	DelayMu           = core.DelayMu
	DelayMu2Sigma     = core.DelayMu2Sigma
	DelayOutliersOnly = core.DelayOutliersOnly
)

// Option configures a Federation.
type Option func(*core.Config)

// WithDelayPolicy overrides the delayed-subquery threshold.
func WithDelayPolicy(p DelayPolicy) Option {
	return func(c *core.Config) { c.DelayPolicy = p }
}

// WithBindBlockSize sets the VALUES block size used when evaluating
// delayed subqueries with bound variables.
func WithBindBlockSize(n int) Option {
	return func(c *core.Config) { c.BindBlockSize = n }
}

// WithWorkers bounds join parallelism (default: GOMAXPROCS).
func WithWorkers(n int) Option {
	return func(c *core.Config) { c.Workers = n }
}

// WithoutCache disables the ASK / check-query / COUNT caches, forcing
// every query to re-probe the endpoints.
func WithoutCache() Option {
	return func(c *core.Config) { c.DisableCache = true }
}

// WithSubqueryCache retains phase-1 subquery results in a persistent
// cross-query cache of at most entries results (LRU eviction past the
// bound), each valid for ttl (0 = no expiry). Every execution path —
// Query, QueryBatch, QueryStream — shares the one cache, so repeat
// traffic reuses earlier queries' subquery results without re-asking
// the endpoints. Results are keyed on the canonicalized subquery text
// plus the stable names of its source endpoints; use InvalidateCaches
// or InvalidateEndpointCaches when federation data changes faster than
// the TTL.
func WithSubqueryCache(entries int, ttl time.Duration) Option {
	return func(c *core.Config) {
		c.SubqueryCacheSize = entries
		c.SubqueryCacheTTL = ttl
	}
}

// WithCoherenceWindow sets how long a coherence probe result stays
// trusted (default 0: every query re-probes). The coherence fence
// tracks each endpoint's monotonic data version and drops cached state
// — subquery results, ASK / check / COUNT probe outcomes — sourced
// from an endpoint whose data changed; a larger window amortizes the
// probe cost over more queries at the price of bounded staleness (at
// most window old).
func WithCoherenceWindow(d time.Duration) Option {
	return func(c *core.Config) { c.CoherenceWindow = d }
}

// WithCoherenceObserve switches the coherence fence to observe-only
// mode: stale cache entries are served (and counted in
// lusail_cache_stale_served_total, with the stale sources re-charged
// to the query's Completeness report) instead of being invalidated.
// Useful for measuring how much staleness a workload would see before
// turning enforcement on, and by the chaos harness to prove the
// oracle detects stale rows.
func WithCoherenceObserve() Option {
	return func(c *core.Config) { c.CoherenceObserveOnly = true }
}

// WithoutCoherence disables data-version probing entirely: cached
// entries are reused until TTL, LRU, or explicit invalidation removes
// them, exactly the pre-coherence behavior.
func WithoutCoherence() Option {
	return func(c *core.Config) { c.DisableCoherence = true }
}

// WithInstrumentation wraps every endpoint in a latency-histogram
// decorator so EndpointStats reports per-endpoint request counts,
// error counts, and latency quantiles.
func WithInstrumentation() Option {
	return func(c *core.Config) { c.Instrument = true }
}

// StatisticsConfig tunes the offline statistics service: harvest page
// size, the predicate-pair summary cap, and the self-tuning
// calibration loop. The zero value uses sensible defaults with
// calibration off.
type StatisticsConfig = stats.Config

// StatisticsStats snapshots the statistics service's counters:
// summaries held, lookup hit/miss/fenced counts, harvest lifecycle,
// plan questions answered per kind, and calibration state.
type StatisticsStats = stats.ServiceStats

// WithStatistics enables the offline statistics service: per-endpoint
// predicate and characteristic-set cardinalities plus predicate-pair
// join summaries, harvested via paged aggregation queries and
// versioned against each endpoint's data version. The cost model,
// source selection, and LADE locality checks consult the summaries
// first and fall back to live probes only on miss, so a warmed
// federation plans queries without any endpoint round trips. Call
// RefreshStatistics to harvest; data churn fences exactly the changed
// endpoint's summary.
func WithStatistics(cfg StatisticsConfig) Option {
	return func(c *core.Config) { c.Statistics = &cfg }
}

// WithCalibration is WithStatistics with the self-tuning loop armed:
// every execution's estimated-vs-actual subquery cardinalities feed
// per-endpoint, per-predicate correction factors applied to future
// estimates, so the cost model's q-error declines as the federation
// serves traffic.
func WithCalibration(cfg StatisticsConfig) Option {
	return func(c *core.Config) {
		cfg.Calibrate = true
		c.Statistics = &cfg
	}
}

// WithReplanOvershoot arms mid-query re-planning: when a phase-1
// subquery's actual cardinality exceeds its estimate by more than
// factor ×, the estimate is corrected in place and the delay partition
// recomputed — subqueries the stale estimate had delayed behind the
// overshooting one are promoted and run concurrently instead of bound.
// factor <= 0 (the default) disables the hook.
func WithReplanOvershoot(factor float64) Option {
	return func(c *core.Config) { c.ReplanOvershoot = factor }
}

// RefreshStatistics harvests (or re-harvests) every endpoint's
// statistics summary. A no-op unless the federation was built
// WithStatistics or WithCalibration.
func (f *Federation) RefreshStatistics(ctx context.Context) error {
	return f.engine.RefreshStats(ctx)
}

// StatisticsStats snapshots the statistics service's counters
// (zero-valued when the service is off).
func (f *Federation) StatisticsStats() StatisticsStats { return f.engine.StatsSnapshot() }

// DegradePolicy selects how a query responds to losing an endpoint
// mid-execution (retries exhausted, circuit open, request rejected).
type DegradePolicy = endpoint.DegradePolicy

// Degradation policies.
const (
	// DegradeFail fails the whole query on the first terminal endpoint
	// error (the default, and the historical behavior).
	DegradeFail = endpoint.DegradeFail
	// DegradeSkipEndpoint drops a failing endpoint's contribution and
	// keeps executing as long as every required subquery still has a
	// live source.
	DegradeSkipEndpoint = endpoint.DegradeSkipEndpoint
	// DegradeBestEffort never fails on endpoint loss or budget expiry:
	// it returns whatever the surviving endpoints can answer, annotated
	// with a Completeness report.
	DegradeBestEffort = endpoint.DegradeBestEffort
)

// ParseDegradePolicy parses "fail", "skip-endpoint", or "best-effort".
func ParseDegradePolicy(s string) (DegradePolicy, error) {
	return endpoint.ParseDegradePolicy(s)
}

// Completeness annotates a degraded query's results: Complete is false
// when contributions were dropped, and Dropped says which and why.
// Results.Completeness is nil unless degradation or a query budget was
// configured.
type Completeness = sparql.Completeness

// Dropped is one contribution a degraded execution gave up on.
type Dropped = sparql.Dropped

// WithDegradation selects the federation's degradation policy. Under
// DegradeSkipEndpoint or DegradeBestEffort, queries that lose an
// endpoint return partial results annotated via Results.Completeness
// instead of failing.
func WithDegradation(p DegradePolicy) Option {
	return func(c *core.Config) { c.Degradation = p }
}

// WithQueryBudget bounds each query's wall-clock time. When the budget
// expires, a DegradeBestEffort federation returns what it has computed
// so far (skipping remaining delayed subqueries); other policies fail
// the query with context.DeadlineExceeded.
func WithQueryBudget(d time.Duration) Option {
	return func(c *core.Config) { c.QueryBudget = d }
}

// HedgeConfig tunes hedged (backup) requests for phase-1 subqueries.
type HedgeConfig = endpoint.HedgeConfig

// DefaultHedge returns production-shaped hedging defaults: a backup
// request fires when the primary exceeds the endpoint's observed p95.
func DefaultHedge() HedgeConfig { return endpoint.DefaultHedge() }

// WithHedging launches a single backup request for phase-1 subqueries
// whose primary exceeds the endpoint's observed latency quantile; the
// first response wins and the loser is cancelled.
func WithHedging(cfg HedgeConfig) Option {
	return func(c *core.Config) { c.Hedge = &cfg }
}

// WithBoundBlockBytes caps the serialized size of a phase-2 VALUES
// block (default 64 KiB). Blocks an endpoint rejects (HTTP 400/413/414)
// or times out on are bisected and retried automatically regardless of
// this cap.
func WithBoundBlockBytes(n int) Option {
	return func(c *core.Config) { c.BoundBlockBytes = n }
}

// ResilienceConfig tunes the per-endpoint fault-tolerance layer:
// per-attempt timeouts, bounded retries with jittered exponential
// backoff, and a circuit breaker.
type ResilienceConfig = endpoint.ResilienceConfig

// DefaultResilience returns production-shaped resilience defaults.
func DefaultResilience() ResilienceConfig { return endpoint.DefaultResilience() }

// WithResilience wraps every endpoint in a resilient decorator (its
// own retry loop and circuit breaker) configured by cfg. Breaker
// states become observable through BreakerStates, which readiness
// probes consume.
func WithResilience(cfg ResilienceConfig) Option {
	return func(c *core.Config) { c.Resilience = &cfg }
}

// QueryLog is the structured query log: correlation IDs, slog
// start/finish events, bounded recent/slow ring buffers (slow queries
// keep their rendered span tree), and query-level metric families.
type QueryLog = obs.QueryLog

// QueryLogConfig tunes a QueryLog.
type QueryLogConfig = obs.QueryLogConfig

// QueryRecord is one completed query as kept in the QueryLog rings.
type QueryRecord = obs.QueryRecord

// NewQueryLog builds a QueryLog.
func NewQueryLog(cfg QueryLogConfig) *QueryLog { return obs.NewQueryLog(cfg) }

// MetricsRegistry collects counters, gauges, and histograms and
// exposes them in the Prometheus text format via its Handler.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// WithObservability attaches ql to the federation (every query gets a
// correlation ID and a start/finish event pair, slow queries are
// captured with their span tree) and enables endpoint instrumentation
// so latency histograms flow into EndpointStats and any registry
// bridged with RegisterMetrics.
func WithObservability(ql *QueryLog) Option {
	return func(c *core.Config) {
		c.QueryLog = ql
		c.Instrument = true
	}
}

// Federation is a Lusail engine over a fixed set of endpoints.
type Federation struct {
	engine    *core.Lusail
	endpoints []Endpoint
}

// New builds a federation over the endpoints.
func New(eps []Endpoint, opts ...Option) *Federation {
	var cfg core.Config
	for _, o := range opts {
		o(&cfg)
	}
	return &Federation{engine: core.New(eps, cfg), endpoints: eps}
}

// Query runs a SPARQL SELECT or ASK query against the federation.
func (f *Federation) Query(ctx context.Context, query string) (*Results, error) {
	return f.engine.Execute(ctx, query)
}

// Metrics returns the profile of the most recent Query call. It is a
// single slot: with concurrent queries on one federation, use
// QueryMetrics to read each call's own profile instead.
func (f *Federation) Metrics() Metrics { return f.engine.LastMetrics() }

// QueryMetrics runs a query and returns its results together with the
// call's own Metrics. Unlike Metrics, this attribution is exact under
// concurrent queries on the same federation.
func (f *Federation) QueryMetrics(ctx context.Context, query string) (*Results, Metrics, error) {
	return f.engine.ExecuteMetrics(ctx, query)
}

// Trace is a query execution's span tree: source selection, GJV
// checks, COUNT estimation, phase-1 subqueries, bound phase-2 blocks,
// hash joins, and left joins, each with wall-clock duration and
// attributes (rows, requests, retries).
type Trace = trace.Trace

// Span is one node of a Trace.
type Span = trace.Span

// QueryTraced runs a query recording a full trace of its execution.
// The trace is also returned when the query fails, describing the work
// done up to the error.
func (f *Federation) QueryTraced(ctx context.Context, query string) (*Results, Metrics, *Trace, error) {
	return f.engine.ExecuteTraced(ctx, query)
}

// QueryStream runs a SELECT query with pipelined streaming execution:
// result rows are delivered through onChunk in bounded chunks as they
// are produced — the first rows typically arrive while slower
// endpoints are still answering — instead of materializing the whole
// result first. onChunk receives the projected header (identical on
// every call) and a chunk of rows; returning an error aborts the
// query. The returned Results summary carries the header and the
// delivered row count (Len()), with empty Rows.
//
// Queries whose solution modifiers need the whole result before the
// first row (DISTINCT, COUNT, ORDER BY) and ASK queries transparently
// fall back to materialized execution and deliver SELECT rows as a
// single chunk.
func (f *Federation) QueryStream(ctx context.Context, query string, onChunk func(vars []Var, rows []Binding) error) (*Results, Metrics, error) {
	return f.engine.ExecuteStream(ctx, query, onChunk)
}

// QueryStreamTraced is QueryStream recording a full execution trace.
func (f *Federation) QueryStreamTraced(ctx context.Context, query string, onChunk func(vars []Var, rows []Binding) error) (*Results, Metrics, *Trace, error) {
	return f.engine.ExecuteStreamTraced(ctx, query, onChunk)
}

// EndpointStat names one endpoint's cumulative traffic statistics.
type EndpointStat = endpoint.EndpointStat

// EndpointStats reports per-endpoint request, error, and latency
// statistics, sorted by endpoint name. Latency histograms are
// populated when the federation was built WithInstrumentation.
func (f *Federation) EndpointStats() []EndpointStat { return f.engine.EndpointStats() }

// BreakerState is a circuit breaker's externally visible state.
type BreakerState = endpoint.BreakerState

// Breaker states.
const (
	BreakerClosed   = endpoint.BreakerClosed
	BreakerOpen     = endpoint.BreakerOpen
	BreakerHalfOpen = endpoint.BreakerHalfOpen
)

// BreakerStatus pairs an endpoint name with its breaker state.
type BreakerStatus = endpoint.BreakerStatus

// BreakerStates reports the circuit-breaker state of every endpoint,
// sorted by name (empty unless the federation was built
// WithResilience). A service readiness probe should report not-ready
// while any breaker is open.
func (f *Federation) BreakerStates() []BreakerStatus { return f.engine.BreakerStates() }

// InFlight reports the number of remote requests currently on the
// wire — the federation's live pool depth.
func (f *Federation) InFlight() int64 { return f.engine.InFlight() }

// CacheStats snapshots one cache's hit/miss/evict/staleness counters
// and current size.
type CacheStats = core.CacheStats

// CacheStatEntry names one engine cache ("ask", "check", "count",
// "subquery") alongside its counters.
type CacheStatEntry = core.CacheStatEntry

// CacheStats reports every engine cache's counters: the ASK
// source-selection cache, the LADE check-query cache, the COUNT
// statistics cache, and the cross-query subquery-result cache.
func (f *Federation) CacheStats() []CacheStatEntry { return f.engine.CacheStats() }

// InvalidateCaches drops every retained planning decision (source
// selection, locality checks, COUNT statistics) and cached subquery
// result — the hook for callers that know federation data changed.
// In-flight computations complete for their waiters but are not
// re-stored.
func (f *Federation) InvalidateCaches() { f.engine.InvalidateCaches() }

// InvalidateEndpointCaches drops the cached state that depends on one
// endpoint (by name): its ASK selections, locality checks, COUNT
// statistics, and every cached subquery result sourced from it.
// Entries for other endpoints survive.
func (f *Federation) InvalidateEndpointCaches(name string) {
	f.engine.InvalidateEndpointCaches(name)
}

// CoherenceStats snapshots the cache-coherence fence: per-endpoint
// tracked data versions plus probe, change, fenced, and stale-served
// counters. Zero-valued when the federation was built
// WithoutCoherence.
type CoherenceStats = core.CoherenceStats

// EndpointVersion is one endpoint's tracked data version.
type EndpointVersion = core.EndpointVersion

// Staleness verdicts reported in Metrics.Staleness: how fresh the
// cached state consulted by the query was guaranteed to be.
const (
	// StalenessFresh: no cached state was reusable (caches disabled or
	// cleared), so every answer came from live endpoint data.
	StalenessFresh = core.StalenessFresh
	// StalenessBounded: the coherence fence enforced data-version
	// stamps, so any reused entry matched an endpoint version at most
	// one probe window old.
	StalenessBounded = core.StalenessBounded
	// StalenessUnverified: some endpoints expose no data version, so
	// entries sourced from them cannot be fenced.
	StalenessUnverified = core.StalenessUnverified
	// StalenessUnfenced: the fence is observing only (or disabled);
	// stale entries may have been served.
	StalenessUnfenced = core.StalenessUnfenced
)

// CoherenceStats reports the coherence fence's per-endpoint tracked
// data versions and cumulative probe/staleness counters.
func (f *Federation) CoherenceStats() CoherenceStats { return f.engine.CoherenceStats() }

// RegisterMetrics bridges the federation's live state into reg:
// per-endpoint request/error/latency families, circuit-breaker state
// gauges, and the in-flight pool-depth gauge. Values are read at
// scrape time, so one registration covers the federation's lifetime.
func (f *Federation) RegisterMetrics(reg *MetricsRegistry) {
	obs.RegisterEndpointStats(reg, f.EndpointStats)
	obs.RegisterBreakers(reg, f.BreakerStates)
	obs.RegisterInFlight(reg, f.InFlight)
	obs.RegisterCaches(reg, f.CacheStats)
	obs.RegisterCoherence(reg, f.CoherenceStats)
	obs.RegisterStats(reg, f.StatisticsStats)
}

// TraceSink receives completed query traces for export. The obs layer
// provides two composable implementations: NewTraceSampler (tail
// sampling) and NewSpanExporter (OTLP/HTTP shipping).
type TraceSink = trace.Sink

// SpanExporter ships completed traces to an OTLP/HTTP collector from a
// bounded asynchronous queue with batching and bounded retry.
type SpanExporter = obs.SpanExporter

// ExporterConfig tunes a SpanExporter.
type ExporterConfig = obs.ExporterConfig

// NewSpanExporter starts an OTLP/HTTP span exporter. Call Shutdown on
// process exit to flush the queue.
func NewSpanExporter(cfg ExporterConfig) *SpanExporter { return obs.NewSpanExporter(cfg) }

// TraceSampler is the tail-sampling stage of a trace export chain: it
// forwards head-sampled traces and always retains slow, errored, and
// degraded ones regardless of the head decision.
type TraceSampler = obs.TraceSampler

// SamplerConfig tunes a TraceSampler.
type SamplerConfig = obs.SamplerConfig

// NewTraceSampler builds the tail-sampling sink stage.
func NewTraceSampler(cfg SamplerConfig) *TraceSampler { return obs.NewTraceSampler(cfg) }

// WithTraceSampling sets the head-sampling ratio for locally-rooted
// traces (deterministic on the trace ID). 1 keeps everything (the
// default), 0 marks every trace unsampled so only tail rules (slow,
// errored, degraded) retain traces. Queries joined to a remote parent
// via W3C trace context keep the caller's sampled flag instead.
func WithTraceSampling(ratio float64) Option {
	return func(c *core.Config) { c.TraceSampling = &ratio }
}

// TraceparentHeader is the W3C Trace Context request header
// ("traceparent"); the federation's endpoint clients inject it on
// every outgoing request, and servers extract it to join the caller's
// trace.
const TraceparentHeader = trace.TraceparentHeader

// ExtractTraceContext reads an inbound W3C traceparent header into
// ctx; queries run under the returned context join the caller's
// distributed trace (same trace ID, parented spans, propagated
// sampling decision).
func ExtractTraceContext(ctx context.Context, h http.Header) context.Context {
	return trace.Extract(ctx, h)
}

// SLO is the in-process SLO engine: multi-window rolling counters
// evaluating availability and latency objectives with fast/slow
// burn-rate computation.
type SLO = obs.SLO

// SLOConfig declares the SLO objectives and evaluation windows.
type SLOConfig = obs.SLOConfig

// SLOStatus is the SLO engine's full snapshot (the /debug/slo body).
type SLOStatus = obs.SLOStatus

// NewSLO builds an SLO engine; feed it query outcomes with Record and
// expose it via Register (metrics) and Handler (/debug/slo).
func NewSLO(cfg SLOConfig) *SLO { return obs.NewSLO(cfg) }

// Plan describes how the federation would execute a query: global
// join variables, decomposed subqueries with sources, cardinality
// estimates, and delay decisions.
type Plan = core.Plan

// Explain analyzes a query and returns its execution plan without
// running it (only the lightweight ASK / check / COUNT probes are
// sent to the endpoints).
func (f *Federation) Explain(ctx context.Context, query string) (*Plan, error) {
	return f.engine.Explain(ctx, query)
}

// Analysis is an executed plan: the static Plan annotated with actual
// per-subquery cardinalities, latencies, and delay-decision outcomes.
type Analysis = core.Analysis

// ExplainAnalyze executes the query (paying its full cost) and returns
// the plan annotated with actual cardinalities, per-subquery
// latencies, and delay-decision outcomes next to the estimates.
func (f *Federation) ExplainAnalyze(ctx context.Context, query string) (*Analysis, error) {
	return f.engine.ExplainAnalyze(ctx, query)
}

// BatchResult pairs one query of a batch with its outcome.
type BatchResult = core.BatchResult

// QueryBatch runs a workload of queries with multi-query optimization:
// the queries share all caches plus a single-flight subquery-result
// cache, so overlapping subqueries across queries execute once.
// Results are returned in input order.
func (f *Federation) QueryBatch(ctx context.Context, queries []string) []BatchResult {
	return f.engine.ExecuteBatch(ctx, queries)
}

// Endpoints returns the federation's endpoints.
func (f *Federation) Endpoints() []Endpoint { return f.endpoints }

// MemoryEndpoint is an in-process endpoint backed by an indexed
// in-memory triple store.
type MemoryEndpoint = endpoint.Local

// LoadEndpoint builds an in-process endpoint from an N-Triples
// document.
func LoadEndpoint(name string, ntriples io.Reader) (*MemoryEndpoint, error) {
	g, err := rdf.ParseNTriples(ntriples)
	if err != nil {
		return nil, fmt.Errorf("lusail: loading endpoint %s: %w", name, err)
	}
	return endpoint.NewLocal(name, store.FromGraph(g)), nil
}

// NewEndpoint builds an empty in-process endpoint; triples can be
// added through its Store.
func NewEndpoint(name string) *MemoryEndpoint {
	return endpoint.NewLocal(name, store.New())
}

// ConnectHTTP returns an endpoint speaking the SPARQL protocol at the
// given URL (query via form-encoded POST, results as streamed SPARQL
// JSON). The endpoint rides a process-wide tuned transport (raised
// per-host keep-alive pool, dial/TLS timeouts) so the executor's
// concurrent subqueries reuse connections instead of queueing behind
// Go's default two-per-host idle pool; see HTTPOption for knobs.
func ConnectHTTP(name, url string, opts ...HTTPOption) Endpoint {
	return endpoint.NewHTTP(name, url, opts...)
}

// HTTPOption customizes a ConnectHTTP endpoint.
type HTTPOption = endpoint.HTTPOption

// TransportConfig tunes an HTTP transport built with NewTransport for
// WithHTTPTransport.
type TransportConfig = endpoint.TransportConfig

// NewHTTPTransport builds a tuned *http.Transport (connection
// pooling, dial/TLS timeouts) from cfg; pass it to WithHTTPTransport
// to give one federation its own pool.
func NewHTTPTransport(cfg TransportConfig) *http.Transport { return endpoint.NewTransport(cfg) }

// WithHTTPTransport swaps the endpoint's transport (e.g. a dedicated
// pool from NewHTTPTransport).
func WithHTTPTransport(t http.RoundTripper) HTTPOption { return endpoint.WithTransport(t) }

// WithHTTPTimeout bounds each request end to end; zero removes the
// client-side bound (the per-query context still applies).
func WithHTTPTimeout(d time.Duration) HTTPOption { return endpoint.WithRequestTimeout(d) }

// WithHTTPGzipRequests gzip-encodes request bodies of at least
// minBytes — bound subqueries carry VALUES blocks that compress well;
// minBytes <= 0 picks a sensible default. The serving side (Serve,
// cmd/endpoint) inflates transparently.
func WithHTTPGzipRequests(minBytes int) HTTPOption { return endpoint.WithGzipRequests(minBytes) }

// DefaultMaxRequestBytes is the default cap on SPARQL protocol POST
// bodies enforced by Serve and the server daemons; oversized requests
// receive HTTP 413.
const DefaultMaxRequestBytes = endpoint.DefaultMaxRequestBytes

// Serve returns an http.Handler exposing ep over the SPARQL protocol;
// mount it to make an in-process endpoint reachable by remote
// federators. Request bodies are capped at DefaultMaxRequestBytes
// (use ServeWithConfig to change the cap or the logger).
func Serve(ep *MemoryEndpoint) http.Handler { return endpoint.Handler(ep) }

// EndpointHandlerConfig tunes ServeWithConfig.
type EndpointHandlerConfig = endpoint.HandlerConfig

// ServeWithConfig is Serve with an explicit logger and request-body
// cap.
func ServeWithConfig(ep *MemoryEndpoint, cfg EndpointHandlerConfig) http.Handler {
	return endpoint.HandlerWithConfig(ep, cfg)
}

// Engine is the interface shared by Lusail and the baseline engines.
type Engine = federation.Engine

// NewBaseline constructs one of the comparison systems over the
// endpoints: "fedx" (index-free, bound joins), "splendid" (VoID-index
// based), "hibiscus" (authority summaries over the FedX executor), or
// "naive" (ship every pattern, join centrally). Index-based baselines
// pay their preprocessing here and require in-process endpoints.
func NewBaseline(name string, eps []Endpoint) (Engine, error) {
	switch name {
	case "fedx":
		return fedx.New(eps, fedx.Config{}), nil
	case "splendid":
		idx, err := splendid.BuildIndex(eps)
		if err != nil {
			return nil, err
		}
		return splendid.New(eps, idx, splendid.Config{}), nil
	case "hibiscus":
		sum, err := hibiscus.BuildSummary(eps)
		if err != nil {
			return nil, err
		}
		return hibiscus.New(eps, sum, fedx.Config{}), nil
	case "naive":
		return federation.NewNaive(eps, federation.NewAskCache()), nil
	default:
		return nil, fmt.Errorf("lusail: unknown baseline %q", name)
	}
}
