// University: the paper's running example (Figures 1 and 2). Two
// university endpoints where EP2's professor Tim holds a PhD from MIT,
// whose address lives at EP1 — the interlink a naive per-endpoint
// evaluation misses. The example runs Qa through Lusail, shows the
// locality-aware decomposition, and contrasts it with per-endpoint
// concatenation.
//
//	go run ./examples/university
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"lusail"
)

// EP1 hosts MIT; EP2 hosts CMU. Tim (at CMU) got his PhD from MIT.
const ep1Data = `<http://ex/Lee> <http://ex/advisor> <http://ex/Ben> .
<http://ex/Lee> <http://ex/takesCourse> <http://ex/OS> .
<http://ex/Ben> <http://ex/teacherOf> <http://ex/OS> .
<http://ex/Ben> <http://ex/PhDDegreeFrom> <http://ex/MIT> .
<http://ex/MIT> <http://ex/address> "XXX" .
`

const ep2Data = `<http://ex/Kim> <http://ex/advisor> <http://ex/Joy> .
<http://ex/Kim> <http://ex/advisor> <http://ex/Tim> .
<http://ex/Kim> <http://ex/takesCourse> <http://ex/DB> .
<http://ex/Joy> <http://ex/teacherOf> <http://ex/DB> .
<http://ex/Tim> <http://ex/teacherOf> <http://ex/DB> .
<http://ex/Joy> <http://ex/PhDDegreeFrom> <http://ex/CMU> .
<http://ex/Tim> <http://ex/PhDDegreeFrom> <http://ex/MIT> .
<http://ex/CMU> <http://ex/address> "CCCC" .
`

// qa is the paper's Figure-2 query: students taking a course taught by
// their advisor, with the URI and address of the advisor's alma mater.
const qa = `SELECT ?S ?P ?U ?A WHERE {
	?S <http://ex/advisor> ?P .
	?S <http://ex/takesCourse> ?C .
	?P <http://ex/teacherOf> ?C .
	?P <http://ex/PhDDegreeFrom> ?U .
	?U <http://ex/address> ?A .
}`

func main() {
	ep1, err := lusail.LoadEndpoint("EP1", strings.NewReader(ep1Data))
	if err != nil {
		log.Fatal(err)
	}
	ep2, err := lusail.LoadEndpoint("EP2", strings.NewReader(ep2Data))
	if err != nil {
		log.Fatal(err)
	}
	eps := []lusail.Endpoint{ep1, ep2}
	ctx := context.Background()

	// Per-endpoint evaluation + concatenation misses Tim's answer.
	fmt.Println("per-endpoint evaluation (concatenation):")
	for _, ep := range eps {
		res, err := ep.Query(ctx, qa)
		if err != nil {
			log.Fatal(err)
		}
		for _, row := range res.Rows {
			printRow(ep.Name(), row)
		}
	}

	fmt.Println("\nLusail (locality-aware decomposition traverses the interlink):")
	fed := lusail.New(eps)
	res, err := fed.Query(ctx, qa)
	if err != nil {
		log.Fatal(err)
	}
	res.Sort()
	for _, row := range res.Rows {
		printRow("federated", row)
	}

	m := fed.Metrics()
	fmt.Printf("\nLADE found %d global join variables and produced %d subqueries (%d delayed)\n",
		m.GJVs, m.Subqueries, m.Delayed)
	fmt.Printf("check queries sent: %d; phases: selection %s, analysis %s, execution %s\n",
		m.CheckQueries, m.SourceSelection, m.Analysis, m.Execution)
	fmt.Println("\nnote the (Kim, Tim, MIT, \"XXX\") row: Tim's alma mater address lives at EP1,")
	fmt.Println("so no single endpoint can produce it — exactly the paper's motivating case.")
}

func printRow(src string, row lusail.Binding) {
	fmt.Printf("  [%s] %-18s %-18s %-18s %s\n", src,
		short(row, "S"), short(row, "P"), short(row, "U"), short(row, "A"))
}

func short(row lusail.Binding, v lusail.Var) string {
	t, ok := row[v]
	if !ok {
		return "-"
	}
	s := t.Value
	if i := strings.LastIndexByte(s, '/'); i >= 0 {
		return s[i+1:]
	}
	return s
}
