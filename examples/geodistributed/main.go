// Geodistributed: the paper's §VI-D setting — endpoints behind
// simulated wide-area links (round-trip latency plus bandwidth). Every
// remote request now costs tens of milliseconds, so request-hungry
// engines degrade disproportionately: the same LUBM query is run
// through Lusail and FedX on a LAN profile and a WAN profile.
//
//	go run ./examples/geodistributed
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"lusail"
	"lusail/internal/benchdata/lubm"
	"lusail/internal/endpoint"
	"lusail/internal/store"
)

func buildFederation(net lusail.NetworkProfile) []lusail.Endpoint {
	graphs := lubm.Generate(lubm.DefaultConfig(2))
	var eps []lusail.Endpoint
	for i, g := range graphs {
		ep := endpoint.NewLocal(fmt.Sprintf("univ%d", i), store.FromGraph(g)).WithNetwork(net)
		eps = append(eps, ep)
	}
	return eps
}

func run(name string, eng lusail.Engine, eps []lusail.Endpoint, query string) {
	ctx := context.Background()
	if _, err := eng.Execute(ctx, query); err != nil { // warm caches
		log.Fatalf("%s: %v", name, err)
	}
	endpoint.ResetAll(eps)
	start := time.Now()
	res, err := eng.Execute(ctx, query)
	if err != nil {
		log.Fatalf("%s: %v", name, err)
	}
	elapsed := time.Since(start)
	reqs := endpoint.TotalStats(eps).Requests
	fmt.Printf("  %-8s %4d rows  %4d requests  %12s\n", name, res.Len(), reqs, elapsed.Round(time.Millisecond))
}

func main() {
	query := lubm.Q2 // the advisor-course triangle of Fig. 12

	for _, setting := range []struct {
		label string
		net   lusail.NetworkProfile
	}{
		{"LAN (local cluster)", lusail.LAN},
		{"WAN (7-region cloud)", lusail.WAN},
	} {
		fmt.Printf("\n%s — per-request RTT %s:\n", setting.label, setting.net.RTT)
		eps := buildFederation(setting.net)
		fed := lusail.New(eps)
		run("lusail", engineOf(fed), eps, query)
		fedx, err := lusail.NewBaseline("fedx", eps)
		if err != nil {
			log.Fatal(err)
		}
		run("fedx", fedx, eps, query)
	}
	fmt.Println("\nthe WAN multiplies each request's cost, so FedX's bound joins —")
	fmt.Println("hundreds of requests — fall behind by orders of magnitude (paper Fig. 14).")
}

// engineOf adapts a Federation to the Engine interface.
func engineOf(f *lusail.Federation) lusail.Engine { return fedAdapter{f} }

type fedAdapter struct{ f *lusail.Federation }

func (a fedAdapter) Name() string { return "lusail" }
func (a fedAdapter) Execute(ctx context.Context, q string) (*lusail.Results, error) {
	return a.f.Query(ctx, q)
}
