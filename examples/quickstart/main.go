// Quickstart: build two in-memory SPARQL endpoints, federate them with
// Lusail, and run a query whose answer spans both.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"lusail"
)

const libraryA = `<http://ex/book1> <http://ex/title> "The Go Programming Language" .
<http://ex/book1> <http://ex/author> <http://ex/donovan> .
<http://ex/donovan> <http://ex/name> "Alan Donovan" .
`

// libraryB knows a different author of the same book: resolving both
// authors' names requires data from both endpoints.
const libraryB = `<http://ex/book1> <http://ex/author> <http://ex/kernighan> .
<http://ex/kernighan> <http://ex/name> "Brian Kernighan" .
<http://ex/book2> <http://ex/title> "The C Programming Language" .
<http://ex/book2> <http://ex/author> <http://ex/kernighan> .
`

func main() {
	epA, err := lusail.LoadEndpoint("libraryA", strings.NewReader(libraryA))
	if err != nil {
		log.Fatal(err)
	}
	epB, err := lusail.LoadEndpoint("libraryB", strings.NewReader(libraryB))
	if err != nil {
		log.Fatal(err)
	}

	fed := lusail.New([]lusail.Endpoint{epA, epB})
	res, err := fed.Query(context.Background(), `
		SELECT ?title ?name WHERE {
			?book <http://ex/title> ?title .
			?book <http://ex/author> ?a .
			?a <http://ex/name> ?name .
		} ORDER BY ?title ?name`)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("books and their authors across the federation:")
	for _, row := range res.Rows {
		fmt.Printf("  %-35s %s\n", row["title"].Value, row["name"].Value)
	}
	m := fed.Metrics()
	fmt.Printf("\nplan: %d subqueries (%d delayed), %d global join variables\n",
		m.Subqueries, m.Delayed, m.GJVs)
	fmt.Printf("remote requests: %d (ASK %d, checks %d, counts %d, execution %d)\n",
		m.RemoteRequests(), m.AskRequests, m.CheckQueries, m.CountQueries,
		m.Phase1Requests+m.Phase2Requests)
}
