// Explain: inspect Lusail's execution plan for the paper's Qa without
// running it, then run an overlapping workload as a batch with
// multi-query optimization.
//
//	go run ./examples/explain
package main

import (
	"context"
	"fmt"
	"log"
	"strings"

	"lusail"
)

const uni1 = `<http://ex/Lee> <http://ex/advisor> <http://ex/Ben> .
<http://ex/Lee> <http://ex/takesCourse> <http://ex/OS> .
<http://ex/Ben> <http://ex/teacherOf> <http://ex/OS> .
<http://ex/Ben> <http://ex/PhDDegreeFrom> <http://ex/MIT> .
<http://ex/MIT> <http://ex/address> "XXX" .
`

const uni2 = `<http://ex/Kim> <http://ex/advisor> <http://ex/Tim> .
<http://ex/Kim> <http://ex/takesCourse> <http://ex/DB> .
<http://ex/Tim> <http://ex/teacherOf> <http://ex/DB> .
<http://ex/Tim> <http://ex/PhDDegreeFrom> <http://ex/MIT> .
<http://ex/CMU> <http://ex/address> "CCCC" .
`

const qa = `SELECT ?S ?P ?U ?A WHERE {
	?S <http://ex/advisor> ?P .
	?S <http://ex/takesCourse> ?C .
	?P <http://ex/teacherOf> ?C .
	?P <http://ex/PhDDegreeFrom> ?U .
	?U <http://ex/address> ?A .
}`

func main() {
	ep1, err := lusail.LoadEndpoint("EP1", strings.NewReader(uni1))
	if err != nil {
		log.Fatal(err)
	}
	ep2, err := lusail.LoadEndpoint("EP2", strings.NewReader(uni2))
	if err != nil {
		log.Fatal(err)
	}
	fed := lusail.New([]lusail.Endpoint{ep1, ep2})
	ctx := context.Background()

	fmt.Println("=== execution plan for Qa (no data moved yet) ===")
	plan, err := fed.Explain(ctx, qa)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(plan.String())

	fmt.Println("\n=== batched workload with multi-query optimization ===")
	workload := []string{qa, qa, `SELECT ?S ?P WHERE {
		?S <http://ex/advisor> ?P .
		?S <http://ex/takesCourse> ?C .
		?P <http://ex/teacherOf> ?C .
	}`}
	for i, br := range fed.QueryBatch(ctx, workload) {
		if br.Err != nil {
			log.Fatalf("query %d: %v", i, br.Err)
		}
		fmt.Printf("query %d: %d rows\n", i, br.Results.Len())
	}
	fmt.Printf("subquery executions shared across the batch: %d\n",
		fed.Metrics().SharedSubqueries)
}
