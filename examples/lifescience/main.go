// Lifescience: the QFed federation (DrugBank, Diseasome, DailyMed,
// Sider) queried for asthma medications — the Drug query of the
// paper's §II — comparing Lusail against the FedX baseline on response
// time and remote requests.
//
//	go run ./examples/lifescience
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"lusail"
	"lusail/internal/benchdata/qfed"
	"lusail/internal/endpoint"
	"lusail/internal/store"
)

func main() {
	graphs := qfed.Generate(qfed.DefaultConfig())
	var eps []lusail.Endpoint
	for i, g := range graphs {
		eps = append(eps, endpoint.NewLocal(qfed.EndpointNames[i], store.FromGraph(g)))
	}
	ctx := context.Background()
	query := qfed.Queries["Drug"]
	fmt.Println("Drug query: medicines for asthma, with optional drug descriptions")

	// Lusail.
	fed := lusail.New(eps)
	if _, err := fed.Query(ctx, query); err != nil { // warm caches
		log.Fatal(err)
	}
	endpoint.ResetAll(eps)
	start := time.Now()
	res, err := fed.Query(ctx, query)
	if err != nil {
		log.Fatal(err)
	}
	lusailTime := time.Since(start)
	lusailReqs := endpoint.TotalStats(eps).Requests
	fmt.Printf("\nlusail: %d medicines in %s, %d remote requests\n", res.Len(), lusailTime, lusailReqs)
	for i, row := range res.Rows {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", res.Len()-5)
			break
		}
		fmt.Printf("  %s (drug %s)\n", row["med"].Value, row["drug"].Value)
	}

	// FedX baseline.
	fedx, err := lusail.NewBaseline("fedx", eps)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := fedx.Execute(ctx, query); err != nil {
		log.Fatal(err)
	}
	endpoint.ResetAll(eps)
	start = time.Now()
	res2, err := fedx.Execute(ctx, query)
	if err != nil {
		log.Fatal(err)
	}
	fedxTime := time.Since(start)
	fedxReqs := endpoint.TotalStats(eps).Requests
	fmt.Printf("\nfedx:   %d medicines in %s, %d remote requests\n", res2.Len(), fedxTime, fedxReqs)

	if res.Len() != res2.Len() {
		log.Fatalf("result mismatch: lusail %d vs fedx %d", res.Len(), res2.Len())
	}
	fmt.Printf("\nboth engines agree on %d results; lusail used %.1fx fewer requests\n",
		res.Len(), float64(fedxReqs)/float64(max64(lusailReqs, 1)))
}

func max64(a int64, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
