package lusail_test

import (
	"fmt"
	"net"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestCLIEndToEnd builds the command-line tools, generates a LUBM
// federation on disk, serves one university over HTTP, loads the other
// in-process, and runs a federated query through the CLI — the full
// user workflow from the README.
func TestCLIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping CLI integration test in -short mode")
	}
	dir := t.TempDir()
	build := func(name string) string {
		bin := filepath.Join(dir, name)
		cmd := exec.Command("go", "build", "-o", bin, "./cmd/"+name)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("building %s: %v\n%s", name, err, out)
		}
		return bin
	}
	datagen := build("datagen")
	endpointBin := build("endpoint")
	lusailBin := build("lusail")

	// Generate two universities.
	dataDir := filepath.Join(dir, "data")
	out, err := exec.Command(datagen, "-benchmark", "lubm", "-universities", "2", "-out", dataDir).CombinedOutput()
	if err != nil {
		t.Fatalf("datagen: %v\n%s", err, out)
	}
	u0 := filepath.Join(dataDir, "university0.nt")
	u1 := filepath.Join(dataDir, "university1.nt")
	if _, err := os.Stat(u0); err != nil {
		t.Fatalf("datagen output missing: %v", err)
	}

	// Serve university0 over HTTP on a free port.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()
	srv := exec.Command(endpointBin, "-data", u0, "-addr", addr, "-name", "univ0")
	if err := srv.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		srv.Process.Kill()
		srv.Wait()
	}()
	// Wait for the server to accept connections.
	deadline := time.Now().Add(10 * time.Second)
	for {
		conn, err := net.DialTimeout("tcp", addr, 200*time.Millisecond)
		if err == nil {
			conn.Close()
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("endpoint server did not come up")
		}
		time.Sleep(50 * time.Millisecond)
	}

	// Federated query: one HTTP endpoint + one local file, through the
	// Lusail engine with -profile.
	query := `PREFIX ub: <http://swat.cse.lehigh.edu/onto/univ-bench.owl#>
SELECT ?x ?y WHERE { ?x ub:advisor ?y . ?x ub:takesCourse ?c . ?y ub:teacherOf ?c . }`
	qf := filepath.Join(dir, "q.rq")
	if err := os.WriteFile(qf, []byte(query), 0o644); err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(lusailBin,
		"-endpoint", "http://"+addr,
		"-endpoint", u1,
		"-query-file", qf,
		"-profile",
	)
	out, err = cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("lusail CLI: %v\n%s", err, out)
	}
	text := string(out)
	if !strings.Contains(text, "?x\t?y") {
		t.Errorf("missing header in output:\n%s", text)
	}
	if !strings.Contains(text, "GraduateStudent") {
		t.Errorf("no result rows in output:\n%s", text)
	}
	if !strings.Contains(text, "subqueries") {
		t.Errorf("missing profile output:\n%s", text)
	}

	// The explain path over the same federation.
	cmd = exec.Command(lusailBin,
		"-endpoint", "http://"+addr,
		"-endpoint", u1,
		"-query-file", qf,
		"-explain",
	)
	out, err = cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("lusail -explain: %v\n%s", err, out)
	}
	if !strings.Contains(string(out), "subquery 0") {
		t.Errorf("explain output unexpected:\n%s", out)
	}

	// A baseline engine over the same endpoints agrees on row count.
	runCount := func(engine string) int {
		cmd := exec.Command(lusailBin,
			"-endpoint", "http://"+addr, "-endpoint", u1,
			"-query-file", qf, "-engine", engine)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("lusail -engine %s: %v\n%s", engine, err, out)
		}
		lines := strings.Split(strings.TrimSpace(string(out)), "\n")
		n := 0
		for _, l := range lines[1:] { // skip header
			if strings.HasPrefix(l, "<") {
				n++
			}
		}
		return n
	}
	if a, b := runCount("lusail"), runCount("fedx"); a != b || a == 0 {
		t.Errorf("row counts differ: lusail=%d fedx=%d", a, b)
	}
	fmt.Println("CLI end-to-end ok")
}
